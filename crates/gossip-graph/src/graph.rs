//! The core undirected graph type.
//!
//! Graphs here are *simple* (no self-loops, no parallel edges), *undirected*,
//! and *immutable once built*.  Edges are first-class because the paper's
//! asynchronous model attaches an independent rate-1 Poisson clock to every
//! edge: the simulator iterates over [`EdgeId`]s, not node pairs.

use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a node, an index in `0..graph.node_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

/// Identifier of an edge, an index in `0..graph.edge_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(value: usize) -> Self {
        EdgeId(value)
    }
}

/// An undirected edge between two distinct nodes.
///
/// The endpoints are stored in normalized order (`u < v`), so two `Edge`
/// values compare equal exactly when they join the same pair of nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    u: NodeId,
    v: NodeId,
}

impl Edge {
    /// Creates a normalized edge between two distinct nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `a == b`.
    pub fn new(a: NodeId, b: NodeId) -> Result<Self> {
        if a == b {
            return Err(GraphError::SelfLoop { node: a.index() });
        }
        let (u, v) = if a.index() < b.index() {
            (a, b)
        } else {
            (b, a)
        };
        Ok(Edge { u, v })
    }

    /// The endpoint with the smaller index.
    pub fn u(&self) -> NodeId {
        self.u
    }

    /// The endpoint with the larger index.
    pub fn v(&self) -> NodeId {
        self.v
    }

    /// Both endpoints as a pair `(u, v)` with `u < v`.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.u, self.v)
    }

    /// Returns `true` if `node` is one of the endpoints.
    pub fn is_incident_to(&self, node: NodeId) -> bool {
        self.u == node || self.v == node
    }

    /// Given one endpoint, returns the other; `None` if `node` is not an
    /// endpoint.
    pub fn other_endpoint(&self, node: NodeId) -> Option<NodeId> {
        if node == self.u {
            Some(self.v)
        } else if node == self.v {
            Some(self.u)
        } else {
            None
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

/// An immutable, simple, undirected graph.
///
/// # Examples
///
/// ```
/// use gossip_graph::{Graph, GraphBuilder, NodeId};
///
/// let mut builder = GraphBuilder::new(3);
/// builder.add_edge(0, 1)?;
/// builder.add_edge(1, 2)?;
/// let graph: Graph = builder.build();
/// assert_eq!(graph.node_count(), 3);
/// assert_eq!(graph.edge_count(), 2);
/// assert_eq!(graph.degree(NodeId(1)), 2);
/// # Ok::<(), gossip_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    node_count: usize,
    edges: Vec<Edge>,
    /// CSR offsets into `adjacency`: neighbours of node `i` live at
    /// `adjacency[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<usize>,
    /// Flattened adjacency: `(neighbour, connecting edge)` pairs.
    adjacency: Vec<(NodeId, EdgeId)>,
}

impl Graph {
    /// Builds a graph from a node count and an edge list.
    ///
    /// This is a convenience wrapper around [`GraphBuilder`].
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint is out of range, any edge is a
    /// self-loop, or the same edge appears twice.
    pub fn from_edges(node_count: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut builder = GraphBuilder::new(node_count);
        for &(a, b) in edges {
            builder.add_edge(a, b)?;
        }
        Ok(builder.build())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all node identifiers in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId)
    }

    /// Iterates over all edge identifiers in increasing order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Borrows the edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Borrows the CSR offset array: the `(neighbour, edge)` pairs of node
    /// `i` live at `csr_adjacency()[csr_offsets()[i]..csr_offsets()[i + 1]]`.
    ///
    /// Together with [`Self::csr_adjacency`] this exposes the flat adjacency
    /// representation the graph already stores internally, so large-`n`
    /// engines can walk neighbourhoods without per-call iterator plumbing.
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Borrows the flattened CSR adjacency array (see [`Self::csr_offsets`]).
    pub fn csr_adjacency(&self) -> &[(NodeId, EdgeId)] {
        &self.adjacency
    }

    /// Builds the packed flat endpoint table used by cache-conscious
    /// simulation engines: entry `e` holds edge `e`'s normalized endpoints as
    /// `(u << 32) | v`, in edge-identifier order.
    ///
    /// Edge identifiers are what the tick samplers draw, so identifier order
    /// *is* the cache-conscious order for the event loop: one aligned 8-byte
    /// load per event instead of a two-word [`Edge`].  Returns `None` when
    /// the node count exceeds `u32::MAX + 1` (endpoints would no longer fit
    /// the packing) — callers fall back to the [`Self::edges`] slice.
    pub fn packed_edge_endpoints(&self) -> Option<Vec<u64>> {
        if self.node_count > u32::MAX as usize + 1 {
            return None;
        }
        Some(
            self.edges
                .iter()
                .map(|edge| {
                    let (u, v) = edge.endpoints();
                    ((u.index() as u64) << 32) | v.index() as u64
                })
                .collect(),
        )
    }

    /// Looks up an edge by identifier.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfRange`] for an invalid identifier.
    pub fn edge(&self, id: EdgeId) -> Result<Edge> {
        self.edges
            .get(id.index())
            .copied()
            .ok_or(GraphError::EdgeOutOfRange {
                edge: id.index(),
                edge_count: self.edges.len(),
            })
    }

    /// Finds the identifier of the edge joining `a` and `b`, if present.
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        if a.index() >= self.node_count || b.index() >= self.node_count || a == b {
            return None;
        }
        self.neighbors(a).find(|(n, _)| *n == b).map(|(_, e)| e)
    }

    /// Returns `true` if nodes `a` and `b` are adjacent.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.find_edge(a, b).is_some()
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        let i = node.index();
        assert!(i < self.node_count, "node {i} out of range");
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Iterates over `(neighbour, connecting edge)` pairs of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let i = node.index();
        assert!(i < self.node_count, "node {i} out of range");
        self.adjacency[self.offsets[i]..self.offsets[i + 1]]
            .iter()
            .copied()
    }

    /// Iterates over the neighbouring nodes of `node` (without edge ids).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbor_nodes(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors(node).map(|(n, _)| n)
    }

    /// Maximum degree over all nodes; `0` for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes; `0` for the empty graph.
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Average degree (`2|E| / |V|`); `0.0` for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.node_count == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.node_count as f64
        }
    }

    /// Validates that a node identifier is in range.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] otherwise.
    pub fn check_node(&self, node: NodeId) -> Result<()> {
        if node.index() < self.node_count {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: node.index(),
                node_count: self.node_count,
            })
        }
    }

    /// Returns the induced subgraph on `nodes`, together with the mapping from
    /// new node indices back to the original [`NodeId`]s.
    ///
    /// Nodes are relabelled `0..nodes.len()` in the sorted order of the
    /// originals.  Edges with exactly both endpoints inside `nodes` are kept.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any listed node is invalid.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> Result<(Graph, Vec<NodeId>)> {
        for &n in nodes {
            self.check_node(n)?;
        }
        let sorted: Vec<NodeId> = {
            let set: BTreeSet<NodeId> = nodes.iter().copied().collect();
            set.into_iter().collect()
        };
        let mut index_of = vec![usize::MAX; self.node_count];
        for (new, old) in sorted.iter().enumerate() {
            index_of[old.index()] = new;
        }
        let mut builder = GraphBuilder::new(sorted.len());
        for edge in &self.edges {
            let iu = index_of[edge.u().index()];
            let iv = index_of[edge.v().index()];
            if iu != usize::MAX && iv != usize::MAX {
                builder.add_edge(iu, iv)?;
            }
        }
        Ok((builder.build(), sorted))
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(|V| = {}, |E| = {})",
            self.node_count,
            self.edges.len()
        )
    }
}

/// Incremental builder for [`Graph`].
///
/// The builder checks simple-graph invariants (no self-loops, no duplicate
/// edges, endpoints in range) as edges are added, and assembles the CSR
/// adjacency structure in [`GraphBuilder::build`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<Edge>,
    seen: BTreeSet<(usize, usize)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `node_count` nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: Vec::new(),
            seen: BTreeSet::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge between nodes `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`], [`GraphError::SelfLoop`], or
    /// [`GraphError::DuplicateEdge`] when the corresponding invariant is
    /// violated.
    pub fn add_edge(&mut self, a: usize, b: usize) -> Result<EdgeId> {
        if a >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: a,
                node_count: self.node_count,
            });
        }
        if b >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: b,
                node_count: self.node_count,
            });
        }
        let edge = Edge::new(NodeId(a), NodeId(b))?;
        let key = (edge.u().index(), edge.v().index());
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge { a, b });
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(edge);
        Ok(id)
    }

    /// Adds an edge only if it is not already present; returns whether an edge
    /// was added.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] for
    /// invalid endpoints.
    pub fn add_edge_if_absent(&mut self, a: usize, b: usize) -> Result<bool> {
        match self.add_edge(a, b) {
            Ok(_) => Ok(true),
            Err(GraphError::DuplicateEdge { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Returns `true` if the edge `{a, b}` has already been added.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.seen.contains(&key)
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let mut degrees = vec![0usize; self.node_count];
        for edge in &self.edges {
            degrees[edge.u().index()] += 1;
            degrees[edge.v().index()] += 1;
        }
        let mut offsets = Vec::with_capacity(self.node_count + 1);
        offsets.push(0);
        for d in &degrees {
            offsets.push(offsets.last().copied().unwrap_or(0) + d);
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![(NodeId(0), EdgeId(0)); 2 * self.edges.len()];
        for (i, edge) in self.edges.iter().enumerate() {
            let (u, v) = (edge.u().index(), edge.v().index());
            adjacency[cursor[u]] = (NodeId(v), EdgeId(i));
            cursor[u] += 1;
            adjacency[cursor[v]] = (NodeId(u), EdgeId(i));
            cursor[v] += 1;
        }
        Graph {
            node_count: self.node_count,
            edges: self.edges,
            offsets,
            adjacency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn node_and_edge_id_basics() {
        let n = NodeId(3);
        assert_eq!(n.index(), 3);
        assert_eq!(n.to_string(), "v3");
        assert_eq!(NodeId::from(3), n);
        let e = EdgeId(7);
        assert_eq!(e.index(), 7);
        assert_eq!(e.to_string(), "e7");
        assert_eq!(EdgeId::from(7), e);
    }

    #[test]
    fn edge_normalizes_endpoints() {
        let e = Edge::new(NodeId(5), NodeId(2)).unwrap();
        assert_eq!(e.u(), NodeId(2));
        assert_eq!(e.v(), NodeId(5));
        assert_eq!(e.endpoints(), (NodeId(2), NodeId(5)));
        assert_eq!(e, Edge::new(NodeId(2), NodeId(5)).unwrap());
        assert_eq!(e.to_string(), "(v2, v5)");
    }

    #[test]
    fn edge_rejects_self_loop() {
        assert!(matches!(
            Edge::new(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop { node: 1 })
        ));
    }

    #[test]
    fn edge_incidence_helpers() {
        let e = Edge::new(NodeId(0), NodeId(3)).unwrap();
        assert!(e.is_incident_to(NodeId(0)));
        assert!(e.is_incident_to(NodeId(3)));
        assert!(!e.is_incident_to(NodeId(1)));
        assert_eq!(e.other_endpoint(NodeId(0)), Some(NodeId(3)));
        assert_eq!(e.other_endpoint(NodeId(3)), Some(NodeId(0)));
        assert_eq!(e.other_endpoint(NodeId(2)), None);
    }

    #[test]
    fn builder_validates_input() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(0, 3),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            b.add_edge(4, 0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(b.add_edge(1, 1), Err(GraphError::SelfLoop { .. })));
        b.add_edge(0, 1).unwrap();
        assert!(matches!(
            b.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert!(b.has_edge(0, 1));
        assert!(b.has_edge(1, 0));
        assert!(!b.has_edge(0, 2));
        assert!(!b.add_edge_if_absent(0, 1).unwrap());
        assert!(b.add_edge_if_absent(0, 2).unwrap());
        assert_eq!(b.edge_count(), 2);
        assert_eq!(b.node_count(), 3);
    }

    #[test]
    fn csr_accessors_mirror_neighbor_iteration() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let offsets = g.csr_offsets();
        let adjacency = g.csr_adjacency();
        assert_eq!(offsets.len(), g.node_count() + 1);
        assert_eq!(adjacency.len(), 2 * g.edge_count());
        for v in g.nodes() {
            let flat: Vec<_> = adjacency[offsets[v.index()]..offsets[v.index() + 1]].to_vec();
            let iterated: Vec<_> = g.neighbors(v).collect();
            assert_eq!(flat, iterated);
        }
    }

    #[test]
    fn packed_endpoints_match_edge_slice_in_id_order() {
        let g = Graph::from_edges(5, &[(3, 1), (0, 4), (2, 0)]).unwrap();
        let packed = g.packed_edge_endpoints().unwrap();
        assert_eq!(packed.len(), g.edge_count());
        for (edge, word) in g.edges().iter().zip(&packed) {
            let (u, v) = edge.endpoints();
            assert_eq!(*word >> 32, u.index() as u64);
            assert_eq!(*word & 0xFFFF_FFFF, v.index() as u64);
            // Endpoints are normalized, so the packed word preserves order.
            assert!(u.index() < v.index());
        }
    }

    #[test]
    fn triangle_adjacency() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
        let neighbors: Vec<NodeId> = g.neighbor_nodes(NodeId(0)).collect();
        assert_eq!(neighbors.len(), 2);
        assert!(neighbors.contains(&NodeId(1)));
        assert!(neighbors.contains(&NodeId(2)));
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.to_string(), "Graph(|V| = 3, |E| = 3)");
    }

    #[test]
    fn neighbors_carry_correct_edge_ids() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        for v in g.nodes() {
            for (n, e) in g.neighbors(v) {
                let edge = g.edge(e).unwrap();
                assert!(edge.is_incident_to(v));
                assert_eq!(edge.other_endpoint(v), Some(n));
            }
        }
    }

    #[test]
    fn find_edge_and_edge_lookup() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(g.find_edge(NodeId(1), NodeId(0)), Some(EdgeId(0)));
        assert_eq!(g.find_edge(NodeId(0), NodeId(2)), None);
        assert_eq!(g.find_edge(NodeId(0), NodeId(0)), None);
        assert_eq!(g.find_edge(NodeId(0), NodeId(9)), None);
        assert!(g.edge(EdgeId(1)).is_ok());
        assert!(matches!(
            g.edge(EdgeId(2)),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
    }

    #[test]
    fn check_node_bounds() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert!(g.check_node(NodeId(1)).is_ok());
        assert!(g.check_node(NodeId(2)).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert!((g.average_degree() - 0.0).abs() < 1e-12);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edge_ids().count(), 0);
    }

    #[test]
    fn isolated_nodes_have_degree_zero() {
        let g = Graph::from_edges(5, &[(0, 1)]).unwrap();
        assert_eq!(g.degree(NodeId(4)), 0);
        assert_eq!(g.neighbor_nodes(NodeId(4)).count(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.max_degree(), 1);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        // Square 0-1-2-3-0 plus a diagonal 0-2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let (sub, mapping) = g
            .induced_subgraph(&[NodeId(0), NodeId(1), NodeId(2)])
            .unwrap();
        assert_eq!(sub.node_count(), 3);
        // Edges kept: (0,1), (1,2), (0,2) — the triangle on {0,1,2}.
        assert_eq!(sub.edge_count(), 3);
        assert_eq!(mapping, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn induced_subgraph_relabels_and_validates() {
        let g = Graph::from_edges(5, &[(0, 4), (4, 2)]).unwrap();
        let (sub, mapping) = g.induced_subgraph(&[NodeId(4), NodeId(2)]).unwrap();
        assert_eq!(mapping, vec![NodeId(2), NodeId(4)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert!(g.induced_subgraph(&[NodeId(9)]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degree_panics_out_of_range() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let _ = g.degree(NodeId(5));
    }

    proptest! {
        #[test]
        fn prop_handshake_lemma(n in 1usize..30, edge_seed in 0u64..1000) {
            // Build a pseudo-random simple graph deterministically from the seed.
            let mut builder = GraphBuilder::new(n);
            let mut state = edge_seed.wrapping_add(1);
            for _ in 0..(2 * n) {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = (state >> 33) as usize % n;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let b = (state >> 33) as usize % n;
                if a != b {
                    let _ = builder.add_edge_if_absent(a, b).unwrap();
                }
            }
            let g = builder.build();
            let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(degree_sum, 2 * g.edge_count());
        }

        #[test]
        fn prop_adjacency_is_symmetric(n in 2usize..20, edge_seed in 0u64..1000) {
            let mut builder = GraphBuilder::new(n);
            let mut state = edge_seed.wrapping_add(7);
            for _ in 0..(3 * n) {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = (state >> 33) as usize % n;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let b = (state >> 33) as usize % n;
                if a != b {
                    let _ = builder.add_edge_if_absent(a, b).unwrap();
                }
            }
            let g = builder.build();
            for u in g.nodes() {
                for (v, _) in g.neighbors(u) {
                    prop_assert!(g.has_edge(v, u));
                    prop_assert!(g.neighbor_nodes(v).any(|w| w == u));
                }
            }
        }
    }
}
