//! Graph generators.
//!
//! Three families:
//!
//! * [`deterministic`] — classical graphs (complete, path, cycle, star, grid,
//!   torus, hypercube, complete bipartite) used as building blocks and as
//!   analytically tractable test cases.
//! * [`random`] — Erdős–Rényi, random-regular, and random-geometric graphs,
//!   all seeded for reproducibility.
//! * [`sparse_cut`] — the constructions the paper actually studies: the
//!   dumbbell graph from the motivating example (two cliques joined by a
//!   single edge), bridged random clusters, two-block stochastic block
//!   models, and a grid with a narrow corridor.  These return the graph
//!   *together with* its canonical [`crate::Partition`] so experiments know
//!   `V₁`, `V₂`, and `E₁₂` exactly as the paper assumes.
//! * [`scale`] — bounded-degree analogues of the sparse-cut families
//!   (chordal-ring expander dumbbells/barbells, rings of cliques) whose edge
//!   counts stay O(n log n), used by the large-`n` scaling tier.

pub mod deterministic;
pub mod random;
pub mod scale;
pub mod sparse_cut;

pub use deterministic::{
    complete, complete_bipartite, cycle, grid2d, hypercube, path, star, torus2d,
};
pub use random::{erdos_renyi, erdos_renyi_connected, random_geometric, random_regular};
pub use scale::{chordal_ring, expander_barbell, expander_dumbbell, ring_of_cliques};
pub use sparse_cut::{barbell, bridged_clusters, dumbbell, grid_corridor, two_block_sbm};
