//! Bounded-degree sparse-cut families for the large-`n` scaling tier.
//!
//! The paper's motivating dumbbell joins two *cliques*, which is fine at a
//! few hundred nodes but inherently O(n²) edges — a 10 000-node clique
//! dumbbell has 25 million edges, defeating the whole point of a sparse
//! representation.  The scaling tier therefore swaps each clique for a
//! **chordal ring**: a cycle plus chords at every power-of-two offset, a
//! deterministic bounded-degree (≈ 2·log₂ n) construction with O(log n)
//! diameter, so each block remains "internally well connected" in the
//! paper's sense while the whole graph keeps O(n log n) edges.
//!
//! Like the families in [`super::sparse_cut`], every generator returns the
//! graph *and* its canonical [`Partition`], with block one on the nodes
//! `0..n₁`.

use crate::{Graph, GraphBuilder, GraphError, NodeId, Partition, Result};

fn block_one_partition(graph: &Graph, n1: usize) -> Result<Partition> {
    let block: Vec<NodeId> = (0..n1).map(NodeId).collect();
    Partition::from_block_one(graph, &block)
}

/// Adds a chordal ring on the node range `offset..offset + n` to `builder`:
/// the cycle through the range plus, for every node, chords at offsets
/// `2, 4, 8, …` (each at most `n/2`).
fn add_chordal_ring(builder: &mut GraphBuilder, offset: usize, n: usize) -> Result<()> {
    for i in 0..n {
        builder.add_edge_if_absent(offset + i, offset + (i + 1) % n)?;
    }
    let mut jump = 2usize;
    while jump <= n / 2 {
        for i in 0..n {
            builder.add_edge_if_absent(offset + i, offset + (i + jump) % n)?;
        }
        jump *= 2;
    }
    Ok(())
}

/// A chordal ring on `n` nodes: the cycle `0 − 1 − … − (n−1) − 0` plus a
/// chord from every node `i` to `i + 2^j (mod n)` for every power of two
/// `2^j ≤ n/2`.
///
/// Degree is ≈ `2·log₂ n`, the diameter is O(log n), and the construction is
/// deterministic — no seeds, no rejection sampling — which makes it the
/// scaling tier's stand-in for a clique.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn chordal_ring(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("chordal ring requires n >= 3, got {n}"),
        });
    }
    let mut builder = GraphBuilder::new(n);
    add_chordal_ring(&mut builder, 0, n)?;
    Ok(builder.build())
}

/// The scaling tier's dumbbell: two chordal rings of `half` nodes joined by
/// a single bridge edge `(half − 1, half)`, mirroring the labelling of the
/// clique dumbbell ([`super::sparse_cut::dumbbell`]).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `half < 3`.
pub fn expander_dumbbell(half: usize) -> Result<(Graph, Partition)> {
    expander_barbell(half, half)
}

/// Asymmetric variant of [`expander_dumbbell`]: chordal rings on `left` and
/// `right` nodes joined by the bridge `(left − 1, left)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either side has fewer than
/// three nodes.
pub fn expander_barbell(left: usize, right: usize) -> Result<(Graph, Partition)> {
    if left < 3 || right < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("expander barbell requires both sides >= 3, got {left} and {right}"),
        });
    }
    let mut builder = GraphBuilder::new(left + right);
    add_chordal_ring(&mut builder, 0, left)?;
    add_chordal_ring(&mut builder, left, right)?;
    builder.add_edge(left - 1, left)?;
    let graph = builder.build();
    let partition = block_one_partition(&graph, left)?;
    Ok((graph, partition))
}

/// A ring of `cliques` cliques of `clique_size` nodes each: consecutive
/// cliques are joined by a single link edge, and the ring is closed by one
/// more link from the last clique back to the first.
///
/// The canonical partition splits the ring into two contiguous arcs of
/// cliques, so the cut always has exactly two edges while both blocks are
/// internally connected chains of cliques.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `cliques < 2` or
/// `clique_size < 2`.
pub fn ring_of_cliques(cliques: usize, clique_size: usize) -> Result<(Graph, Partition)> {
    if cliques < 2 || clique_size < 2 {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "ring of cliques requires >= 2 cliques of >= 2 nodes, got {cliques} x {clique_size}"
            ),
        });
    }
    let n = cliques * clique_size;
    let mut builder = GraphBuilder::new(n);
    for c in 0..cliques {
        let base = c * clique_size;
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                builder.add_edge(base + i, base + j)?;
            }
        }
    }
    // Link edges: last node of clique c to first node of clique c + 1, plus
    // the closing link from the last clique back to node 0.
    for c in 0..cliques - 1 {
        builder.add_edge(c * clique_size + clique_size - 1, (c + 1) * clique_size)?;
    }
    builder.add_edge(n - 1, 0)?;
    let graph = builder.build();
    let block_one_cliques = cliques.div_ceil(2);
    let partition = block_one_partition(&graph, block_one_cliques * clique_size)?;
    Ok((graph, partition))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use proptest::prelude::*;

    #[test]
    fn chordal_ring_structure() {
        let g = chordal_ring(16).unwrap();
        assert_eq!(g.node_count(), 16);
        assert!(is_connected(&g));
        // Ring (16 edges) + chords at offsets 2, 4, 8.  Offset 8 pairs nodes
        // antipodally, so those chords are counted once each.
        assert_eq!(g.edge_count(), 16 + 16 + 16 + 8);
        // Every node sees offsets ±1, ±2, ±4 and 8: degree 7.
        for v in g.nodes() {
            assert_eq!(g.degree(v), 7);
        }
        assert!(chordal_ring(2).is_err());
    }

    #[test]
    fn chordal_ring_diameter_is_logarithmic() {
        let g = chordal_ring(256).unwrap();
        let ecc = crate::traversal::eccentricity(&g, NodeId(0)).unwrap();
        assert!(ecc <= 16, "eccentricity {ecc} too large for a chordal ring");
    }

    #[test]
    fn expander_dumbbell_structure() {
        let (g, p) = expander_dumbbell(32).unwrap();
        assert_eq!(g.node_count(), 64);
        assert!(is_connected(&g));
        assert_eq!(p.cut_edge_count(), 1);
        assert_eq!(p.smaller_block_size(), 32);
        let bridge = g.edge(p.cut_edges()[0]).unwrap();
        assert_eq!(bridge.endpoints(), (NodeId(31), NodeId(32)));
        assert!(p.require_blocks_connected(&g).is_ok());
        assert!(expander_dumbbell(2).is_err());
    }

    #[test]
    fn expander_barbell_asymmetric() {
        let (g, p) = expander_barbell(8, 20).unwrap();
        assert_eq!(g.node_count(), 28);
        assert_eq!(p.smaller_block_size(), 8);
        assert_eq!(p.larger_block_size(), 20);
        assert_eq!(p.cut_edge_count(), 1);
        assert!(p.require_blocks_connected(&g).is_ok());
        assert!(expander_barbell(2, 20).is_err());
        assert!(expander_barbell(20, 2).is_err());
    }

    #[test]
    fn ring_of_cliques_structure() {
        let (g, p) = ring_of_cliques(6, 5).unwrap();
        assert_eq!(g.node_count(), 30);
        assert!(is_connected(&g));
        // 6 cliques of C(5,2) = 10 edges plus 6 link edges.
        assert_eq!(g.edge_count(), 6 * 10 + 6);
        assert_eq!(p.cut_edge_count(), 2);
        assert_eq!(p.block_one_size(), 15);
        assert!(p.require_blocks_connected(&g).is_ok());
        assert!(ring_of_cliques(1, 5).is_err());
        assert!(ring_of_cliques(5, 1).is_err());
    }

    #[test]
    fn ring_of_cliques_two_clique_degenerate_ring() {
        let (g, p) = ring_of_cliques(2, 4).unwrap();
        assert_eq!(g.node_count(), 8);
        assert_eq!(p.cut_edge_count(), 2);
        assert!(p.require_blocks_connected(&g).is_ok());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_expander_dumbbell_single_cut(half in 3usize..40) {
            let (g, p) = expander_dumbbell(half).unwrap();
            prop_assert_eq!(p.cut_edge_count(), 1);
            prop_assert_eq!(g.node_count(), 2 * half);
            prop_assert!(is_connected(&g));
        }

        #[test]
        fn prop_ring_of_cliques_cut_is_two(cliques in 2usize..8, size in 2usize..6) {
            let (g, p) = ring_of_cliques(cliques, size).unwrap();
            prop_assert_eq!(p.cut_edge_count(), 2);
            prop_assert!(is_connected(&g));
            prop_assert!(p.require_blocks_connected(&g).is_ok());
        }

        #[test]
        fn prop_chordal_ring_degree_is_logarithmic(n in 3usize..200) {
            let g = chordal_ring(n).unwrap();
            let bound = 2 * (usize::BITS - n.leading_zeros()) as usize + 2;
            prop_assert!(g.max_degree() <= bound,
                "degree {} exceeds 2·log bound {bound} at n = {n}", g.max_degree());
        }
    }
}
