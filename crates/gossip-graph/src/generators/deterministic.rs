//! Deterministic graph families.
//!
//! Each generator validates its parameters and returns a simple, connected
//! graph (except where the family is inherently disconnected for degenerate
//! parameters, which is rejected instead).

use crate::{Graph, GraphBuilder, GraphError, Result};

fn require(condition: bool, reason: &str) -> Result<()> {
    if condition {
        Ok(())
    } else {
        Err(GraphError::InvalidParameter {
            reason: reason.to_string(),
        })
    }
}

/// Complete graph `K_n` on `n ≥ 1` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn complete(n: usize) -> Result<Graph> {
    require(n >= 1, "complete graph requires n >= 1")?;
    let mut builder = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            builder.add_edge(i, j)?;
        }
    }
    Ok(builder.build())
}

/// Path graph `P_n` on `n ≥ 1` nodes (`0 − 1 − … − n−1`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn path(n: usize) -> Result<Graph> {
    require(n >= 1, "path graph requires n >= 1")?;
    let mut builder = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        builder.add_edge(i, i + 1)?;
    }
    Ok(builder.build())
}

/// Cycle graph `C_n` on `n ≥ 3` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn cycle(n: usize) -> Result<Graph> {
    require(n >= 3, "cycle graph requires n >= 3")?;
    let mut builder = GraphBuilder::new(n);
    for i in 0..n {
        builder.add_edge(i, (i + 1) % n)?;
    }
    Ok(builder.build())
}

/// Star graph on `n ≥ 2` nodes: node 0 is the hub.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph> {
    require(n >= 2, "star graph requires n >= 2")?;
    let mut builder = GraphBuilder::new(n);
    for i in 1..n {
        builder.add_edge(0, i)?;
    }
    Ok(builder.build())
}

/// 2-D grid graph with `rows × cols` nodes, 4-neighbour connectivity.
///
/// Node `(r, c)` has index `r * cols + c`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is zero.
pub fn grid2d(rows: usize, cols: usize) -> Result<Graph> {
    require(rows >= 1 && cols >= 1, "grid requires positive dimensions")?;
    let mut builder = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let idx = r * cols + c;
            if c + 1 < cols {
                builder.add_edge(idx, idx + 1)?;
            }
            if r + 1 < rows {
                builder.add_edge(idx, idx + cols)?;
            }
        }
    }
    Ok(builder.build())
}

/// 2-D torus (grid with wraparound), `rows × cols` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is < 3 (the
/// wraparound would create parallel edges otherwise).
pub fn torus2d(rows: usize, cols: usize) -> Result<Graph> {
    require(rows >= 3 && cols >= 3, "torus requires dimensions >= 3")?;
    let mut builder = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let idx = r * cols + c;
            let right = r * cols + (c + 1) % cols;
            let down = ((r + 1) % rows) * cols + c;
            builder.add_edge_if_absent(idx, right)?;
            builder.add_edge_if_absent(idx, down)?;
        }
    }
    Ok(builder.build())
}

/// Hypercube graph `Q_d` on `2^d` nodes, `d ≥ 1`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `d == 0` or `d > 20`.
pub fn hypercube(dimension: usize) -> Result<Graph> {
    require(dimension >= 1, "hypercube requires dimension >= 1")?;
    require(dimension <= 20, "hypercube limited to dimension <= 20")?;
    let n = 1usize << dimension;
    let mut builder = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..dimension {
            let u = v ^ (1 << bit);
            if v < u {
                builder.add_edge(v, u)?;
            }
        }
    }
    Ok(builder.build())
}

/// Complete bipartite graph `K_{a,b}`: nodes `0..a` on one side, `a..a+b` on
/// the other.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either side is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Result<Graph> {
    require(
        a >= 1 && b >= 1,
        "complete bipartite requires both sides non-empty",
    )?;
    let mut builder = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            builder.add_edge(i, a + j)?;
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_connected};
    use proptest::prelude::*;

    #[test]
    fn complete_graph_edge_count() {
        for n in 1..=8 {
            let g = complete(n).unwrap();
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n * (n - 1) / 2);
            assert!(is_connected(&g));
            if n > 1 {
                assert_eq!(g.min_degree(), n - 1);
                assert_eq!(g.max_degree(), n - 1);
            }
        }
        assert!(complete(0).is_err());
    }

    #[test]
    fn path_and_cycle() {
        let p = path(6).unwrap();
        assert_eq!(p.edge_count(), 5);
        assert_eq!(diameter(&p).unwrap(), 5);
        assert!(path(0).is_err());
        assert_eq!(path(1).unwrap().edge_count(), 0);

        let c = cycle(6).unwrap();
        assert_eq!(c.edge_count(), 6);
        assert_eq!(c.min_degree(), 2);
        assert_eq!(c.max_degree(), 2);
        assert_eq!(diameter(&c).unwrap(), 3);
        assert!(cycle(2).is_err());
    }

    #[test]
    fn star_graph() {
        let s = star(7).unwrap();
        assert_eq!(s.edge_count(), 6);
        assert_eq!(s.degree(crate::NodeId(0)), 6);
        assert_eq!(s.degree(crate::NodeId(3)), 1);
        assert_eq!(diameter(&s).unwrap(), 2);
        assert!(star(1).is_err());
    }

    #[test]
    fn grid_and_torus() {
        let g = grid2d(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        // Edge count: rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17.
        assert_eq!(g.edge_count(), 17);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g).unwrap(), 5);
        assert!(grid2d(0, 3).is_err());

        let t = torus2d(3, 3).unwrap();
        assert_eq!(t.node_count(), 9);
        assert_eq!(t.edge_count(), 18);
        assert_eq!(t.min_degree(), 4);
        assert_eq!(t.max_degree(), 4);
        assert!(torus2d(2, 3).is_err());
    }

    #[test]
    fn hypercube_graph() {
        let q3 = hypercube(3).unwrap();
        assert_eq!(q3.node_count(), 8);
        assert_eq!(q3.edge_count(), 12);
        assert_eq!(q3.min_degree(), 3);
        assert_eq!(q3.max_degree(), 3);
        assert_eq!(diameter(&q3).unwrap(), 3);
        assert!(hypercube(0).is_err());
        assert!(hypercube(21).is_err());
    }

    #[test]
    fn complete_bipartite_graph() {
        let g = complete_bipartite(2, 3).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(crate::NodeId(0)), 3);
        assert_eq!(g.degree(crate::NodeId(4)), 2);
        assert!(complete_bipartite(0, 3).is_err());
    }

    proptest! {
        #[test]
        fn prop_deterministic_families_connected(n in 3usize..30) {
            prop_assert!(is_connected(&complete(n).unwrap()));
            prop_assert!(is_connected(&path(n).unwrap()));
            prop_assert!(is_connected(&cycle(n).unwrap()));
            prop_assert!(is_connected(&star(n).unwrap()));
        }

        #[test]
        fn prop_grid_edge_count(rows in 1usize..8, cols in 1usize..8) {
            let g = grid2d(rows, cols).unwrap();
            prop_assert_eq!(g.edge_count(), rows * (cols - 1) + cols * (rows - 1));
        }

        #[test]
        fn prop_hypercube_regular(d in 1usize..7) {
            let g = hypercube(d).unwrap();
            prop_assert_eq!(g.node_count(), 1 << d);
            prop_assert_eq!(g.edge_count(), d * (1 << d) / 2);
            prop_assert_eq!(g.min_degree(), d);
            prop_assert_eq!(g.max_degree(), d);
        }
    }
}
