//! Seeded random graph families.
//!
//! All generators take an explicit `u64` seed and use ChaCha8 so that every
//! experiment in the workspace is reproducible bit-for-bit.

use crate::{Graph, GraphBuilder, GraphError, Result};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Erdős–Rényi graph `G(n, p)`: each of the `n(n−1)/2` possible edges is
/// present independently with probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0` or `p ∉ [0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "Erdős–Rényi graph requires n >= 1".into(),
        });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability must lie in [0, 1], got {p}"),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                builder.add_edge(i, j)?;
            }
        }
    }
    Ok(builder.build())
}

/// Erdős–Rényi graph conditioned on being connected: resamples (with seeds
/// `seed`, `seed + 1`, …) until a connected sample is drawn.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for invalid `n`/`p` and
/// [`GraphError::Disconnected`] if no connected sample is found within
/// `max_attempts` tries.
pub fn erdos_renyi_connected(n: usize, p: f64, seed: u64, max_attempts: usize) -> Result<Graph> {
    for attempt in 0..max_attempts {
        let g = erdos_renyi(n, p, seed.wrapping_add(attempt as u64))?;
        if crate::traversal::is_connected(&g) {
            return Ok(g);
        }
    }
    Err(GraphError::Disconnected)
}

/// Random `d`-regular graph via the configuration model with rejection of
/// self-loops and parallel edges (retrying whole samples as needed).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n·d` is odd, `d ≥ n`, or
/// `d == 0`, and [`GraphError::Disconnected`] if no simple connected sample
/// is found within a generous retry budget.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph> {
    if d == 0 || d >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("random regular graph requires 0 < d < n, got d = {d}, n = {n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("n·d must be even, got n = {n}, d = {d}"),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    const MAX_ATTEMPTS: usize = 1000;
    'attempt: for _ in 0..MAX_ATTEMPTS {
        // Stubs: d copies of every node, shuffled and paired off.
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(&mut rng);
        let mut builder = GraphBuilder::new(n);
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b {
                continue 'attempt;
            }
            match builder.add_edge(a, b) {
                Ok(_) => {}
                Err(GraphError::DuplicateEdge { .. }) => continue 'attempt,
                Err(e) => return Err(e),
            }
        }
        let g = builder.build();
        if crate::traversal::is_connected(&g) {
            return Ok(g);
        }
    }
    Err(GraphError::Disconnected)
}

/// Random geometric graph: `n` points uniform in the unit square, an edge
/// between every pair at Euclidean distance at most `radius`.
///
/// Returns the graph and the sampled positions (useful for plotting and for
/// geographic-style workloads).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0` or `radius <= 0`.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Result<(Graph, Vec<(f64, f64)>)> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "random geometric graph requires n >= 1".into(),
        });
    }
    if radius <= 0.0 || !radius.is_finite() {
        return Err(GraphError::InvalidParameter {
            reason: format!("radius must be positive and finite, got {radius}"),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut builder = GraphBuilder::new(n);
    let r2 = radius * radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = positions[i].0 - positions[j].0;
            let dy = positions[i].1 - positions[j].1;
            if dx * dx + dy * dy <= r2 {
                builder.add_edge(i, j)?;
            }
        }
    }
    Ok((builder.build(), positions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use proptest::prelude::*;

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        let empty = erdos_renyi(10, 0.0, 1).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, 1).unwrap();
        assert_eq!(full.edge_count(), 45);
        assert!(erdos_renyi(0, 0.5, 1).is_err());
        assert!(erdos_renyi(5, 1.5, 1).is_err());
        assert!(erdos_renyi(5, -0.1, 1).is_err());
    }

    #[test]
    fn erdos_renyi_is_reproducible() {
        let a = erdos_renyi(20, 0.3, 42).unwrap();
        let b = erdos_renyi(20, 0.3, 42).unwrap();
        assert_eq!(a, b);
        let c = erdos_renyi(20, 0.3, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let n = 60;
        let p = 0.25;
        let g = erdos_renyi(n, p, 7).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            ((g.edge_count() as f64) - expected).abs() < 5.0 * sd,
            "edge count {} too far from expectation {expected}",
            g.edge_count()
        );
    }

    #[test]
    fn erdos_renyi_connected_retries() {
        // p well above the connectivity threshold: succeeds quickly.
        let g = erdos_renyi_connected(30, 0.3, 5, 50).unwrap();
        assert!(is_connected(&g));
        // p = 0 can never be connected for n >= 2.
        assert!(matches!(
            erdos_renyi_connected(5, 0.0, 5, 10),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn random_regular_degrees() {
        let g = random_regular(16, 4, 11).unwrap();
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        assert!(random_regular(5, 0, 1).is_err());
        assert!(random_regular(5, 5, 1).is_err());
        assert!(random_regular(5, 3, 1).is_err()); // odd n*d
    }

    #[test]
    fn random_regular_reproducible() {
        let a = random_regular(12, 3, 99).unwrap();
        let b = random_regular(12, 3, 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_geometric_radius_extremes() {
        let (g, pos) = random_geometric(15, 2.0, 3).unwrap();
        // Radius √2 covers the whole unit square, so the graph is complete.
        assert_eq!(g.edge_count(), 15 * 14 / 2);
        assert_eq!(pos.len(), 15);
        for (x, y) in pos {
            assert!((0.0..=1.0).contains(&x));
            assert!((0.0..=1.0).contains(&y));
        }
        let (tiny, _) = random_geometric(15, 1e-9, 3).unwrap();
        assert_eq!(tiny.edge_count(), 0);
        assert!(random_geometric(0, 0.1, 3).is_err());
        assert!(random_geometric(5, 0.0, 3).is_err());
        assert!(random_geometric(5, f64::NAN, 3).is_err());
    }

    #[test]
    fn random_geometric_respects_radius() {
        let (g, pos) = random_geometric(40, 0.3, 17).unwrap();
        for e in g.edges() {
            let (ax, ay) = pos[e.u().index()];
            let (bx, by) = pos[e.v().index()];
            let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
            assert!(dist <= 0.3 + 1e-12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_er_edge_count_bounded(n in 1usize..40, seed in 0u64..50) {
            let g = erdos_renyi(n, 0.5, seed).unwrap();
            prop_assert!(g.edge_count() <= n * (n - 1) / 2);
        }

        #[test]
        fn prop_random_regular_handshake(k in 2usize..6, seed in 0u64..20) {
            let n = 2 * k + 4;
            let d = 3;
            if (n * d) % 2 == 0 {
                let g = random_regular(n, d, seed).unwrap();
                let total: usize = g.nodes().map(|v| g.degree(v)).sum();
                prop_assert_eq!(total, n * d);
            }
        }
    }
}
