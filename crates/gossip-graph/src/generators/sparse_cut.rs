//! Graphs with a designated sparse cut — the setting of the paper.
//!
//! Every generator here returns the graph *and* its canonical
//! [`Partition`], so downstream code knows `V₁`, `V₂`, and `E₁₂` exactly as
//! Notation 1 of the paper assumes.  Node labelling follows the paper's
//! convention: the vertices of `G₁` are `0..n₁` and those of `G₂` are
//! `n₁..n`, so for the single-bridge families the designated cut edge `e_c`
//! joins node `n₁ − 1` to node `n₁`.

use crate::{Graph, GraphBuilder, GraphError, NodeId, Partition, Result};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn block_one_partition(graph: &Graph, n1: usize) -> Result<Partition> {
    let block: Vec<NodeId> = (0..n1).map(NodeId).collect();
    Partition::from_block_one(graph, &block)
}

/// The paper's motivating example: two complete graphs `K_half` joined by a
/// single bridge edge between node `half − 1` and node `half`.
///
/// The convex lower bound on this graph is `Ω(n)` while Algorithm A achieves
/// `O(log² n)`, so this is the canonical separation instance.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `half < 2` (each side must be a
/// connected clique on at least two nodes for the construction to be
/// meaningful).
pub fn dumbbell(half: usize) -> Result<(Graph, Partition)> {
    barbell(half, half)
}

/// Generalized dumbbell: a clique on `left` nodes and a clique on `right`
/// nodes joined by a single bridge edge `(left − 1, left)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either side has fewer than two
/// nodes.
pub fn barbell(left: usize, right: usize) -> Result<(Graph, Partition)> {
    if left < 2 || right < 2 {
        return Err(GraphError::InvalidParameter {
            reason: format!("barbell requires both sides >= 2, got {left} and {right}"),
        });
    }
    let n = left + right;
    let mut builder = GraphBuilder::new(n);
    for i in 0..left {
        for j in (i + 1)..left {
            builder.add_edge(i, j)?;
        }
    }
    for i in left..n {
        for j in (i + 1)..n {
            builder.add_edge(i, j)?;
        }
    }
    builder.add_edge(left - 1, left)?;
    let graph = builder.build();
    let partition = block_one_partition(&graph, left)?;
    Ok((graph, partition))
}

/// Two connected Erdős–Rényi clusters `G(n1, p)` and `G(n2, p)` joined by
/// `bridges` edges.
///
/// The bridge endpoints are chosen uniformly at random without repeating an
/// edge.  The clusters are resampled until connected, so the result always
/// satisfies the paper's Notation 1.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for empty clusters, out-of-range
/// `p`, zero bridges, or more bridges than distinct cross pairs, and
/// [`GraphError::Disconnected`] if connected cluster samples cannot be found.
pub fn bridged_clusters(
    n1: usize,
    n2: usize,
    bridges: usize,
    p: f64,
    seed: u64,
) -> Result<(Graph, Partition)> {
    if n1 == 0 || n2 == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "bridged clusters require non-empty sides".into(),
        });
    }
    if bridges == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "at least one bridge edge is required".into(),
        });
    }
    if bridges > n1 * n2 {
        return Err(GraphError::InvalidParameter {
            reason: format!("cannot place {bridges} distinct bridges between {n1} and {n2} nodes"),
        });
    }
    let g1 = super::random::erdos_renyi_connected(n1, p, seed, 200)?;
    let g2 = super::random::erdos_renyi_connected(n2, p, seed.wrapping_add(0x9E37_79B9), 200)?;

    let n = n1 + n2;
    let mut builder = GraphBuilder::new(n);
    for e in g1.edges() {
        builder.add_edge(e.u().index(), e.v().index())?;
    }
    for e in g2.edges() {
        builder.add_edge(n1 + e.u().index(), n1 + e.v().index())?;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(0xB55A_4BE5));
    let mut placed = 0usize;
    while placed < bridges {
        let a = rng.gen_range(0..n1);
        let b = n1 + rng.gen_range(0..n2);
        if builder.add_edge_if_absent(a, b)? {
            placed += 1;
        }
    }
    let graph = builder.build();
    let partition = block_one_partition(&graph, n1)?;
    Ok((graph, partition))
}

/// Two-block stochastic block model: within-block edges appear with
/// probability `p_in`, cross-block edges with probability `p_out`.
///
/// The sample is conditioned (by resampling with shifted seeds) on both
/// blocks being internally connected and at least one cross edge existing.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for empty blocks or out-of-range
/// probabilities and [`GraphError::Disconnected`] if no valid sample is found
/// within the retry budget.
pub fn two_block_sbm(
    n1: usize,
    n2: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<(Graph, Partition)> {
    if n1 == 0 || n2 == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "SBM requires non-empty blocks".into(),
        });
    }
    for (name, p) in [("p_in", p_in), ("p_out", p_out)] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidParameter {
                reason: format!("{name} must lie in [0, 1], got {p}"),
            });
        }
    }
    const MAX_ATTEMPTS: usize = 200;
    let n = n1 + n2;
    for attempt in 0..MAX_ATTEMPTS {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(attempt as u64));
        let mut builder = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let same_block = (i < n1) == (j < n1);
                let p = if same_block { p_in } else { p_out };
                if rng.gen::<f64>() < p {
                    builder.add_edge(i, j)?;
                }
            }
        }
        let graph = builder.build();
        let partition = match block_one_partition(&graph, n1) {
            Ok(p) => p,
            Err(_) => continue,
        };
        if partition.cut_edge_count() == 0 {
            continue;
        }
        if (n1 > 1 || n2 > 1) && partition.require_blocks_connected(&graph).is_err() {
            continue;
        }
        return Ok((graph, partition));
    }
    Err(GraphError::Disconnected)
}

/// Two `rows × cols` grids joined by `corridor_width` horizontal edges between
/// their facing columns.
///
/// This models the "sensor field with a narrow corridor" workload: both sides
/// are well connected internally (2-D grids) while only `corridor_width ≤
/// rows` edges cross between them.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if any dimension is zero or
/// `corridor_width` is zero or exceeds `rows`.
pub fn grid_corridor(
    rows: usize,
    cols: usize,
    corridor_width: usize,
) -> Result<(Graph, Partition)> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "grid corridor requires positive dimensions".into(),
        });
    }
    if corridor_width == 0 || corridor_width > rows {
        return Err(GraphError::InvalidParameter {
            reason: format!("corridor width must lie in 1..={rows}, got {corridor_width}"),
        });
    }
    let side = rows * cols;
    let n = 2 * side;
    let mut builder = GraphBuilder::new(n);
    // Internal grid edges for both sides; right side indices offset by `side`.
    for offset in [0, side] {
        for r in 0..rows {
            for c in 0..cols {
                let idx = offset + r * cols + c;
                if c + 1 < cols {
                    builder.add_edge(idx, idx + 1)?;
                }
                if r + 1 < rows {
                    builder.add_edge(idx, idx + cols)?;
                }
            }
        }
    }
    // Corridor: connect the last column of the left grid to the first column
    // of the right grid on the first `corridor_width` rows.
    for r in 0..corridor_width {
        let left_node = r * cols + (cols - 1);
        let right_node = side + r * cols;
        builder.add_edge(left_node, right_node)?;
    }
    let graph = builder.build();
    let partition = block_one_partition(&graph, side)?;
    Ok((graph, partition))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use proptest::prelude::*;

    #[test]
    fn dumbbell_structure() {
        let (g, p) = dumbbell(8).unwrap();
        assert_eq!(g.node_count(), 16);
        // Two K_8 (28 edges each) plus one bridge.
        assert_eq!(g.edge_count(), 2 * 28 + 1);
        assert!(is_connected(&g));
        assert_eq!(p.cut_edge_count(), 1);
        assert_eq!(p.smaller_block_size(), 8);
        assert_eq!(p.larger_block_size(), 8);
        let bridge = g.edge(p.cut_edges()[0]).unwrap();
        assert_eq!(bridge.endpoints(), (NodeId(7), NodeId(8)));
        assert!(p.require_blocks_connected(&g).is_ok());
        assert!((p.theorem1_ratio() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn dumbbell_rejects_tiny_sides() {
        assert!(dumbbell(1).is_err());
        assert!(barbell(2, 1).is_err());
        assert!(barbell(1, 2).is_err());
    }

    #[test]
    fn barbell_asymmetric() {
        let (g, p) = barbell(3, 10).unwrap();
        assert_eq!(g.node_count(), 13);
        assert_eq!(g.edge_count(), 3 + 45 + 1);
        assert_eq!(p.smaller_block_size(), 3);
        assert_eq!(p.larger_block_size(), 10);
        assert_eq!(p.cut_edge_count(), 1);
        // Normalized convention: the paper's n1 is the smaller side.
        assert!((p.theorem1_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bridged_clusters_structure() {
        let (g, p) = bridged_clusters(12, 15, 4, 0.5, 7).unwrap();
        assert_eq!(g.node_count(), 27);
        assert!(is_connected(&g));
        assert_eq!(p.cut_edge_count(), 4);
        assert_eq!(p.block_one_size(), 12);
        assert_eq!(p.block_two_size(), 15);
        assert!(p.require_blocks_connected(&g).is_ok());
        // Cut edges really cross.
        for &e in p.cut_edges() {
            let edge = g.edge(e).unwrap();
            assert!(p.is_cut_edge(&edge));
        }
    }

    #[test]
    fn bridged_clusters_reproducible_and_validated() {
        let a = bridged_clusters(8, 8, 2, 0.6, 42).unwrap();
        let b = bridged_clusters(8, 8, 2, 0.6, 42).unwrap();
        assert_eq!(a.0, b.0);
        assert!(bridged_clusters(0, 5, 1, 0.5, 1).is_err());
        assert!(bridged_clusters(5, 5, 0, 0.5, 1).is_err());
        assert!(bridged_clusters(2, 2, 5, 0.5, 1).is_err());
    }

    #[test]
    fn sbm_structure() {
        let (g, p) = two_block_sbm(10, 14, 0.7, 0.05, 123).unwrap();
        assert_eq!(g.node_count(), 24);
        assert!(p.cut_edge_count() >= 1);
        assert!(p.require_blocks_connected(&g).is_ok());
        assert_eq!(p.block_one_size(), 10);
        // The cut should be much sparser than the blocks are dense.
        assert!(p.conductance() < 0.5);
    }

    #[test]
    fn sbm_rejects_bad_parameters() {
        assert!(two_block_sbm(0, 5, 0.5, 0.1, 1).is_err());
        assert!(two_block_sbm(5, 5, 1.5, 0.1, 1).is_err());
        assert!(two_block_sbm(5, 5, 0.5, -0.1, 1).is_err());
        // p_out = 0 can never produce a cut edge.
        assert!(matches!(
            two_block_sbm(4, 4, 1.0, 0.0, 1),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn grid_corridor_structure() {
        let (g, p) = grid_corridor(4, 3, 2).unwrap();
        assert_eq!(g.node_count(), 24);
        assert!(is_connected(&g));
        assert_eq!(p.cut_edge_count(), 2);
        assert_eq!(p.block_one_size(), 12);
        assert!(p.require_blocks_connected(&g).is_ok());
        // Internal edges per side: rows*(cols-1) + cols*(rows-1) = 4*2+3*3 = 17.
        assert_eq!(g.edge_count(), 2 * 17 + 2);
    }

    #[test]
    fn grid_corridor_rejects_bad_widths() {
        assert!(grid_corridor(0, 3, 1).is_err());
        assert!(grid_corridor(3, 0, 1).is_err());
        assert!(grid_corridor(3, 3, 0).is_err());
        assert!(grid_corridor(3, 3, 4).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_dumbbell_cut_is_single_edge(half in 2usize..20) {
            let (g, p) = dumbbell(half).unwrap();
            prop_assert_eq!(p.cut_edge_count(), 1);
            prop_assert_eq!(g.node_count(), 2 * half);
            prop_assert_eq!(p.smaller_block_size(), half);
            prop_assert!(is_connected(&g));
        }

        #[test]
        fn prop_bridged_clusters_cut_size(bridges in 1usize..6, seed in 0u64..20) {
            let (g, p) = bridged_clusters(8, 9, bridges, 0.6, seed).unwrap();
            prop_assert_eq!(p.cut_edge_count(), bridges);
            prop_assert!(is_connected(&g));
        }

        #[test]
        fn prop_grid_corridor_cut_width(width in 1usize..5) {
            let (_, p) = grid_corridor(5, 4, width).unwrap();
            prop_assert_eq!(p.cut_edge_count(), width);
        }
    }
}
