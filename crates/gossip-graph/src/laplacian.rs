//! Matrix representations of a graph: adjacency, degree, Laplacian,
//! normalized Laplacian, and the expected single-tick gossip matrix.
//!
//! The spectral gap of these matrices is what makes "internally well
//! connected" quantitative: the vanilla averaging time of a subgraph scales
//! like `1/λ₂` of its gossip Laplacian (up to logarithmic factors), which is
//! exactly the quantity Algorithm A's epoch length is built from.
//!
//! Every builder comes in two flavours: dense ([`gossip_linalg::Matrix`],
//! O(n²) storage, the reference representation) and sparse
//! ([`gossip_linalg::CsrMatrix`], O(|V| + |E|) storage, the scaling-tier
//! representation).  The sparse builders produce exactly the same entries as
//! their dense counterparts — the workspace's differential oracle suite
//! asserts elementwise agreement on every generator family.

use crate::{Graph, Result};
use gossip_linalg::{CsrMatrix, Matrix};

/// Dense adjacency matrix `A` with `A[i][j] = 1` iff `{i, j} ∈ E`.
pub fn adjacency_matrix(graph: &Graph) -> Matrix {
    let n = graph.node_count();
    let mut m = Matrix::zeros(n, n);
    for edge in graph.edges() {
        m.set(edge.u().index(), edge.v().index(), 1.0);
        m.set(edge.v().index(), edge.u().index(), 1.0);
    }
    m
}

/// Dense diagonal degree matrix `D`.
pub fn degree_matrix(graph: &Graph) -> Matrix {
    let degrees: Vec<f64> = graph.nodes().map(|v| graph.degree(v) as f64).collect();
    Matrix::from_diagonal(&degrees)
}

/// Combinatorial Laplacian `L = D − A`.
///
/// `L` is symmetric positive semi-definite with row sums zero; its smallest
/// eigenvalue is 0 (eigenvector: all-ones) and its second-smallest eigenvalue
/// `λ₂` is the algebraic connectivity.
pub fn laplacian(graph: &Graph) -> Matrix {
    let n = graph.node_count();
    let mut m = Matrix::zeros(n, n);
    for edge in graph.edges() {
        let (u, v) = (edge.u().index(), edge.v().index());
        m.add_to(u, u, 1.0);
        m.add_to(v, v, 1.0);
        m.add_to(u, v, -1.0);
        m.add_to(v, u, -1.0);
    }
    m
}

/// Symmetric normalized Laplacian `𝓛 = D^{-1/2} L D^{-1/2}`.
///
/// Rows/columns of isolated (degree-0) nodes are left as zero.
pub fn normalized_laplacian(graph: &Graph) -> Matrix {
    let n = graph.node_count();
    let lap = laplacian(graph);
    let inv_sqrt: Vec<f64> = graph
        .nodes()
        .map(|v| {
            let d = graph.degree(v) as f64;
            if d > 0.0 {
                1.0 / d.sqrt()
            } else {
                0.0
            }
        })
        .collect();
    Matrix::from_fn(n, n, |i, j| lap.get(i, j) * inv_sqrt[i] * inv_sqrt[j])
}

/// Expected one-tick update matrix of vanilla edge-clock gossip.
///
/// When the clock of edge `{i, j}` ticks, the state is multiplied by
/// `W_{ij} = I − (e_i − e_j)(e_i − e_j)ᵀ / 2`.  With every edge equally likely
/// to be the next to tick, the expected update matrix is
///
/// `W̄ = I − L / (2 |E|)`.
///
/// Its second-largest eigenvalue controls the per-tick contraction of the
/// expected disagreement, and hence the vanilla averaging time.
///
/// # Errors
///
/// Returns [`crate::GraphError::InvalidParameter`] if the graph has no edges.
pub fn expected_gossip_matrix(graph: &Graph) -> Result<Matrix> {
    if graph.edge_count() == 0 {
        return Err(crate::GraphError::InvalidParameter {
            reason: "expected gossip matrix requires at least one edge".into(),
        });
    }
    let n = graph.node_count();
    let lap = laplacian(graph);
    let scale = 1.0 / (2.0 * graph.edge_count() as f64);
    let mut m = Matrix::identity(n);
    for i in 0..n {
        for j in 0..n {
            m.add_to(i, j, -scale * lap.get(i, j));
        }
    }
    Ok(m)
}

/// Sparse CSR adjacency matrix, entrywise identical to [`adjacency_matrix`]
/// but with O(|E|) storage.
pub fn adjacency_matrix_sparse(graph: &Graph) -> CsrMatrix {
    let n = graph.node_count();
    let mut triplets = Vec::with_capacity(2 * graph.edge_count());
    for edge in graph.edges() {
        let (u, v) = (edge.u().index(), edge.v().index());
        triplets.push((u, v, 1.0));
        triplets.push((v, u, 1.0));
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("edge endpoints are in range")
}

/// Sparse CSR combinatorial Laplacian `L = D − A`, entrywise identical to
/// [`laplacian`] but with O(|V| + |E|) storage.
pub fn laplacian_sparse(graph: &Graph) -> CsrMatrix {
    let n = graph.node_count();
    let mut triplets = Vec::with_capacity(n + 2 * graph.edge_count());
    for v in graph.nodes() {
        let d = graph.degree(v) as f64;
        if d > 0.0 {
            triplets.push((v.index(), v.index(), d));
        }
    }
    for edge in graph.edges() {
        let (u, v) = (edge.u().index(), edge.v().index());
        triplets.push((u, v, -1.0));
        triplets.push((v, u, -1.0));
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("edge endpoints are in range")
}

/// Sparse CSR symmetric normalized Laplacian `𝓛 = D^{-1/2} L D^{-1/2}`,
/// entrywise identical to [`normalized_laplacian`]; rows/columns of isolated
/// nodes stay empty.
pub fn normalized_laplacian_sparse(graph: &Graph) -> CsrMatrix {
    let n = graph.node_count();
    let inv_sqrt: Vec<f64> = graph
        .nodes()
        .map(|v| {
            let d = graph.degree(v) as f64;
            if d > 0.0 {
                1.0 / d.sqrt()
            } else {
                0.0
            }
        })
        .collect();
    let mut triplets = Vec::with_capacity(n + 2 * graph.edge_count());
    for v in graph.nodes() {
        let i = v.index();
        let d = graph.degree(v) as f64;
        if d > 0.0 {
            // Diagonal of L is the degree, so 𝓛_{ii} = d · (1/√d)² = 1.
            triplets.push((i, i, d * inv_sqrt[i] * inv_sqrt[i]));
        }
    }
    for edge in graph.edges() {
        let (u, v) = (edge.u().index(), edge.v().index());
        let w = -inv_sqrt[u] * inv_sqrt[v];
        triplets.push((u, v, w));
        triplets.push((v, u, w));
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("edge endpoints are in range")
}

/// Sparse CSR expected one-tick gossip matrix `W̄ = I − L/(2|E|)`, entrywise
/// identical to [`expected_gossip_matrix`].
///
/// # Errors
///
/// Returns [`crate::GraphError::InvalidParameter`] if the graph has no edges.
pub fn expected_gossip_matrix_sparse(graph: &Graph) -> Result<CsrMatrix> {
    if graph.edge_count() == 0 {
        return Err(crate::GraphError::InvalidParameter {
            reason: "expected gossip matrix requires at least one edge".into(),
        });
    }
    let n = graph.node_count();
    let scale = 1.0 / (2.0 * graph.edge_count() as f64);
    let mut triplets = Vec::with_capacity(n + 2 * graph.edge_count());
    for v in graph.nodes() {
        let d = graph.degree(v) as f64;
        triplets.push((v.index(), v.index(), 1.0 - scale * d));
    }
    for edge in graph.edges() {
        let (u, v) = (edge.u().index(), edge.v().index());
        triplets.push((u, v, scale));
        triplets.push((v, u, scale));
    }
    Ok(CsrMatrix::from_triplets(n, n, &triplets).expect("edge endpoints are in range"))
}

/// The single-edge averaging matrix `W_e = I − (e_u − e_v)(e_u − e_v)ᵀ / 2`
/// applied when edge `e = {u, v}` ticks under vanilla gossip.
///
/// # Errors
///
/// Returns [`crate::GraphError::EdgeOutOfRange`] for an invalid edge id.
pub fn single_edge_average_matrix(graph: &Graph, edge: crate::EdgeId) -> Result<Matrix> {
    let e = graph.edge(edge)?;
    let n = graph.node_count();
    let (u, v) = (e.u().index(), e.v().index());
    let mut m = Matrix::identity(n);
    m.set(u, u, 0.5);
    m.set(v, v, 0.5);
    m.set(u, v, 0.5);
    m.set(v, u, 0.5);
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;
    use gossip_linalg::{SymmetricEigen, Vector};

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn adjacency_symmetric_and_correct() {
        let a = adjacency_matrix(&triangle());
        assert!(a.is_symmetric(1e-12));
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(0, 0), 0.0);
        assert!((a.frobenius_norm().powi(2) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn degree_matrix_diagonal() {
        let d = degree_matrix(&path(4));
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(3, 3), 1.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn laplacian_row_sums_zero_and_psd() {
        let l = laplacian(&triangle());
        assert!(l.rows_sum_to(0.0, 1e-12));
        assert!(l.is_symmetric(1e-12));
        let eig = SymmetricEigen::compute(&l).unwrap();
        assert!(eig.smallest() > -1e-9);
        assert!(eig.smallest().abs() < 1e-9);
        // Triangle = K3: non-zero eigenvalues are all 3.
        assert!((eig.second_smallest().unwrap() - 3.0).abs() < 1e-8);
    }

    #[test]
    fn laplacian_quadratic_form_counts_edge_differences() {
        let g = path(3);
        let l = laplacian(&g);
        let x = Vector::from(vec![0.0, 2.0, 5.0]);
        let expected = (0.0f64 - 2.0).powi(2) + (2.0f64 - 5.0).powi(2);
        assert!((l.quadratic_form(&x).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn normalized_laplacian_spectrum_bounded_by_two() {
        let g = path(5);
        let nl = normalized_laplacian(&g);
        assert!(nl.is_symmetric(1e-12));
        let eig = SymmetricEigen::compute(&nl).unwrap();
        assert!(eig.smallest().abs() < 1e-9);
        assert!(eig.largest() <= 2.0 + 1e-9);
        // Diagonal entries are 1 for non-isolated nodes.
        for i in 0..5 {
            assert!((nl.get(i, i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_laplacian_handles_isolated_nodes() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let nl = normalized_laplacian(&g);
        assert_eq!(nl.get(2, 2), 0.0);
        assert_eq!(nl.get(2, 0), 0.0);
    }

    #[test]
    fn expected_gossip_matrix_is_doubly_stochastic() {
        let g = triangle();
        let w = expected_gossip_matrix(&g).unwrap();
        assert!(w.rows_sum_to(1.0, 1e-12));
        assert!(w.is_symmetric(1e-12));
        // Preserves the all-ones vector exactly.
        let ones = Vector::ones(3);
        let wo = w.matvec(&ones).unwrap();
        assert!(wo.distance(&ones).unwrap() < 1e-12);
        // Its eigenvalues lie in [0, 1] with the top one equal to 1.
        let eig = SymmetricEigen::compute(&w).unwrap();
        assert!((eig.largest() - 1.0).abs() < 1e-9);
        assert!(eig.smallest() > -1e-9);
    }

    #[test]
    fn expected_gossip_matrix_requires_edges() {
        let g = Graph::from_edges(3, &[]).unwrap();
        assert!(expected_gossip_matrix(&g).is_err());
    }

    #[test]
    fn single_edge_matrix_averages_endpoints() {
        let g = path(3);
        let eid = g.find_edge(crate::NodeId(0), crate::NodeId(1)).unwrap();
        let w = single_edge_average_matrix(&g, eid).unwrap();
        let x = Vector::from(vec![4.0, 0.0, 7.0]);
        let y = w.matvec(&x).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 2.0, 7.0]);
        // Doubly stochastic and idempotent (projection).
        assert!(w.rows_sum_to(1.0, 1e-12));
        assert_eq!(w.matmul(&w).unwrap(), w);
        assert!(single_edge_average_matrix(&g, crate::EdgeId(99)).is_err());
    }

    #[test]
    fn gossip_matrix_relation_to_laplacian() {
        // W̄ = I − L/(2|E|): verify entrywise.
        let g = path(4);
        let w = expected_gossip_matrix(&g).unwrap();
        let l = laplacian(&g);
        let m = graph_identity(4);
        for i in 0..4 {
            for j in 0..4 {
                let expected = m.get(i, j) - l.get(i, j) / (2.0 * g.edge_count() as f64);
                assert!((w.get(i, j) - expected).abs() < 1e-12);
            }
        }
    }

    fn graph_identity(n: usize) -> Matrix {
        Matrix::identity(n)
    }

    #[test]
    fn sparse_builders_match_dense_entrywise() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap();
        assert_eq!(adjacency_matrix_sparse(&g).to_dense(), adjacency_matrix(&g));
        assert_eq!(laplacian_sparse(&g).to_dense(), laplacian(&g));
        assert_eq!(
            normalized_laplacian_sparse(&g).to_dense(),
            normalized_laplacian(&g)
        );
        assert_eq!(
            expected_gossip_matrix_sparse(&g).unwrap().to_dense(),
            expected_gossip_matrix(&g).unwrap()
        );
    }

    #[test]
    fn sparse_laplacian_storage_is_linear_in_edges() {
        let g = path(6);
        let lap = laplacian_sparse(&g);
        // 6 diagonal entries + 2 per edge.
        assert_eq!(lap.nnz(), 6 + 2 * g.edge_count());
        assert!(lap.is_symmetric(0.0));
        assert!(lap.rows_sum_to(0.0, 1e-12));
    }

    #[test]
    fn sparse_builders_handle_isolated_nodes() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let lap = laplacian_sparse(&g);
        assert_eq!(lap.row_nnz(2), 0);
        let norm = normalized_laplacian_sparse(&g);
        assert_eq!(norm.row_nnz(2), 0);
        assert_eq!(norm.to_dense(), normalized_laplacian(&g));
    }

    #[test]
    fn sparse_gossip_matrix_requires_edges() {
        let g = Graph::from_edges(3, &[]).unwrap();
        assert!(expected_gossip_matrix_sparse(&g).is_err());
        let connected = triangle();
        let w = expected_gossip_matrix_sparse(&connected).unwrap();
        assert!(w.rows_sum_to(1.0, 1e-12));
        assert!(w.is_symmetric(1e-15));
    }
}
