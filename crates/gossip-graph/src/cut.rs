//! Finding a sparse cut when one is not given.
//!
//! The paper assumes the partition `(G₁, G₂)` and a designated cut edge `e_c`
//! are known to the algorithm.  For workloads where only the graph is given
//! (e.g. a stochastic block model sample), this module recovers a good
//! two-block partition by **spectral bisection**: compute the Fiedler vector,
//! sort the vertices by their Fiedler value, and take the prefix ("sweep cut")
//! minimizing conductance.  It also provides a plain sign-split and an
//! exhaustive search for tiny graphs, used in tests as ground truth.

use crate::partition::Block;
use crate::{spectral, Graph, GraphError, NodeId, Partition, Result};

/// Strategy used by [`find_sparse_cut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutStrategy {
    /// Split the vertices by the sign of their Fiedler-vector entry.
    FiedlerSign,
    /// Sort by Fiedler value and take the prefix with the smallest
    /// conductance (the classic sweep cut; never worse than the sign split
    /// for conductance).
    SweepCut,
}

/// Finds a two-block partition with small conductance using spectral methods.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for graphs with fewer than two
/// nodes or no edges, [`GraphError::Disconnected`] for disconnected graphs,
/// and propagates eigensolver failures.
pub fn find_sparse_cut(graph: &Graph, strategy: CutStrategy) -> Result<Partition> {
    if graph.node_count() < 2 || graph.edge_count() == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "sparse-cut search requires at least two nodes and one edge".into(),
        });
    }
    if !crate::traversal::is_connected(graph) {
        return Err(GraphError::Disconnected);
    }
    let fiedler = spectral::fiedler_vector(graph)?;
    match strategy {
        CutStrategy::FiedlerSign => {
            let block_one: Vec<NodeId> =
                graph.nodes().filter(|v| fiedler[v.index()] < 0.0).collect();
            let block_one = if block_one.is_empty() || block_one.len() == graph.node_count() {
                // Degenerate sign pattern (can happen with ties); fall back to
                // splitting around the median.
                median_split(graph, &fiedler)
            } else {
                block_one
            };
            Ok(Partition::from_block_one(graph, &block_one)?.normalized())
        }
        CutStrategy::SweepCut => sweep_cut(graph, &fiedler),
    }
}

fn median_split(graph: &Graph, fiedler: &gossip_linalg::Vector) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by(|a, b| {
        fiedler[a.index()]
            .partial_cmp(&fiedler[b.index()])
            .expect("Fiedler entries are finite")
    });
    order[..graph.node_count() / 2].to_vec()
}

fn sweep_cut(graph: &Graph, fiedler: &gossip_linalg::Vector) -> Result<Partition> {
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by(|a, b| {
        fiedler[a.index()]
            .partial_cmp(&fiedler[b.index()])
            .expect("Fiedler entries are finite")
    });

    let mut best: Option<(f64, usize)> = None;
    for prefix_len in 1..graph.node_count() {
        let partition = Partition::from_block_one(graph, &order[..prefix_len])?;
        let phi = partition.conductance();
        if best.map(|(b, _)| phi < b).unwrap_or(true) {
            best = Some((phi, prefix_len));
        }
    }
    let (_, prefix_len) = best.expect("at least one prefix is considered");
    Ok(Partition::from_block_one(graph, &order[..prefix_len])?.normalized())
}

/// Exhaustively finds the minimum-conductance two-block partition.
///
/// Exponential in the node count; intended only as ground truth in tests.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for graphs with more than 20 nodes
/// (to prevent accidental blow-ups), fewer than two nodes, or no edges.
pub fn exhaustive_min_conductance_cut(graph: &Graph) -> Result<Partition> {
    let n = graph.node_count();
    if n < 2 || graph.edge_count() == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "exhaustive cut search requires at least two nodes and one edge".into(),
        });
    }
    if n > 20 {
        return Err(GraphError::InvalidParameter {
            reason: format!("exhaustive cut search limited to 20 nodes, got {n}"),
        });
    }
    let mut best: Option<(f64, Vec<Block>)> = None;
    // Iterate over non-trivial subsets; fix node 0 in block two to halve the work.
    for mask in 1u64..(1u64 << (n - 1)) {
        let membership: Vec<Block> = (0..n)
            .map(|i| {
                if i > 0 && (mask >> (i - 1)) & 1 == 1 {
                    Block::One
                } else {
                    Block::Two
                }
            })
            .collect();
        let partition = Partition::from_membership(graph, membership.clone())?;
        let phi = partition.conductance();
        if best.as_ref().map(|(b, _)| phi < *b).unwrap_or(true) {
            best = Some((phi, membership));
        }
    }
    let (_, membership) = best.expect("at least one subset is considered");
    Ok(Partition::from_membership(graph, membership)?.normalized())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Graph;

    #[test]
    fn sweep_cut_recovers_dumbbell_bridge() {
        let (graph, reference) = generators::dumbbell(8).unwrap();
        for strategy in [CutStrategy::FiedlerSign, CutStrategy::SweepCut] {
            let found = find_sparse_cut(&graph, strategy).unwrap();
            assert_eq!(found.cut_edge_count(), 1, "strategy {strategy:?}");
            assert_eq!(found.smaller_block_size(), reference.smaller_block_size());
            // The cut edge must be the designated bridge.
            assert_eq!(found.cut_edges(), reference.cut_edges());
        }
    }

    #[test]
    fn sweep_cut_on_path_prefers_balanced_middle_cut() {
        let edges: Vec<(usize, usize)> = (0..7).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(8, &edges).unwrap();
        let p = find_sparse_cut(&g, CutStrategy::SweepCut).unwrap();
        assert_eq!(p.cut_edge_count(), 1);
        // Minimum conductance on a path cuts it near the middle.
        assert_eq!(p.smaller_block_size(), 4);
    }

    #[test]
    fn spectral_matches_exhaustive_on_small_dumbbell() {
        let (graph, _) = generators::dumbbell(4).unwrap();
        let spectral = find_sparse_cut(&graph, CutStrategy::SweepCut).unwrap();
        let exhaustive = exhaustive_min_conductance_cut(&graph).unwrap();
        assert!((spectral.conductance() - exhaustive.conductance()).abs() < 1e-12);
        assert_eq!(spectral.cut_edge_count(), exhaustive.cut_edge_count());
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let single = Graph::from_edges(1, &[]).unwrap();
        assert!(find_sparse_cut(&single, CutStrategy::SweepCut).is_err());
        let no_edges = Graph::from_edges(3, &[]).unwrap();
        assert!(find_sparse_cut(&no_edges, CutStrategy::SweepCut).is_err());
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            find_sparse_cut(&disconnected, CutStrategy::SweepCut),
            Err(GraphError::Disconnected)
        ));
        assert!(exhaustive_min_conductance_cut(&single).is_err());
        let big = generators::complete(21).unwrap();
        assert!(exhaustive_min_conductance_cut(&big).is_err());
    }

    #[test]
    fn exhaustive_on_two_triangles_with_bridge() {
        // Two triangles {0,1,2} and {3,4,5} joined by the single edge (2,3).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .unwrap();
        let p = exhaustive_min_conductance_cut(&g).unwrap();
        assert_eq!(p.cut_edge_count(), 1);
        assert_eq!(p.smaller_block_size(), 3);
        let q = find_sparse_cut(&g, CutStrategy::SweepCut).unwrap();
        assert_eq!(q.cut_edge_count(), 1);
    }

    #[test]
    fn sweep_never_worse_than_sign_split() {
        let (graph, _) = generators::bridged_clusters(10, 12, 3, 0.6, 0xBEEF).unwrap();
        let sign = find_sparse_cut(&graph, CutStrategy::FiedlerSign).unwrap();
        let sweep = find_sparse_cut(&graph, CutStrategy::SweepCut).unwrap();
        assert!(sweep.conductance() <= sign.conductance() + 1e-12);
    }
}
