//! Graph substrate for the sparse-cut gossip reproduction.
//!
//! *Distributed averaging in the presence of a sparse cut* (Narayanan, PODC
//! 2008) studies gossip on a connected graph `G = (V, E)` that decomposes into
//! two internally well-connected subgraphs `G₁`, `G₂` joined by a small set of
//! cut edges `E₁₂`.  This crate provides everything needed to *instantiate*
//! that setting:
//!
//! * [`Graph`] — an immutable undirected simple graph with a CSR-style
//!   adjacency structure and an explicit edge list (edges are the objects that
//!   carry Poisson clocks in the paper's model).
//! * [`generators`] — deterministic families (complete, path, cycle, star,
//!   grid, torus, hypercube, …), random families (Erdős–Rényi, random
//!   regular, random geometric), and sparse-cut constructions (the dumbbell
//!   graph from the paper's motivating example, bridged clusters, two-block
//!   stochastic block models, grid corridors).
//! * [`Partition`] — a two-block vertex partition together with its cut
//!   `E₁₂`, block sizes `n₁ ≤ n₂`, conductance and the `min(n₁,n₂)/|E₁₂|`
//!   quantity from Theorem 1.
//! * [`cut`] — spectral bisection (Fiedler vector + sweep cut) for finding a
//!   sparse cut when one is not known a priori.
//! * [`laplacian`] / [`spectral`] — dense Laplacians and their spectra, used
//!   for the spectral estimate of the vanilla averaging time.
//! * [`traversal`] — BFS, connectivity, components, distances, diameter.
//! * [`dynamic`] — a live/dead edge mask over an immutable graph
//!   ([`DynamicGraphView`]) with connectivity and worst-surviving-subgraph
//!   spectral probes, the graph-layer counterpart of the simulator's
//!   fault-injection tier.
//!
//! # Examples
//!
//! Build the paper's dumbbell graph and inspect its canonical sparse cut:
//!
//! ```
//! use gossip_graph::generators::dumbbell;
//!
//! let (graph, partition) = dumbbell(16)?;
//! assert_eq!(graph.node_count(), 32);
//! assert_eq!(partition.cut_edge_count(), 1);
//! assert_eq!(partition.smaller_block_size(), 16);
//! # Ok::<(), gossip_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cut;
pub mod dynamic;
pub mod generators;
pub mod graph;
pub mod laplacian;
pub mod metrics;
pub mod partition;
pub mod spectral;
pub mod traversal;

pub use dynamic::DynamicGraphView;
pub use graph::{Edge, EdgeId, Graph, GraphBuilder, NodeId};
pub use partition::Partition;

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or analysing graphs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index was out of range for the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// An edge index was out of range for the graph.
    EdgeOutOfRange {
        /// The offending edge index.
        edge: usize,
        /// The number of edges in the graph.
        edge_count: usize,
    },
    /// A self-loop was supplied where simple graphs are required.
    SelfLoop {
        /// The node with the attempted self-loop.
        node: usize,
    },
    /// A duplicate edge was supplied where simple graphs are required.
    DuplicateEdge {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A generator was asked for an impossible configuration
    /// (e.g. a 0-node complete graph or a degree larger than `n − 1`).
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// The graph (or a required subgraph) is not connected.
    Disconnected,
    /// A partition did not cover the vertex set exactly once.
    InvalidPartition {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An underlying linear-algebra computation failed.
    Linalg(gossip_linalg::LinalgError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::EdgeOutOfRange { edge, edge_count } => {
                write!(
                    f,
                    "edge {edge} out of range for graph with {edge_count} edges"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} not allowed"),
            GraphError::DuplicateEdge { a, b } => {
                write!(f, "duplicate edge between nodes {a} and {b}")
            }
            GraphError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::InvalidPartition { reason } => write!(f, "invalid partition: {reason}"),
            GraphError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gossip_linalg::LinalgError> for GraphError {
    fn from(e: gossip_linalg::LinalgError) -> Self {
        GraphError::Linalg(e)
    }
}

/// Convenient result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errors = [
            GraphError::NodeOutOfRange {
                node: 5,
                node_count: 3,
            },
            GraphError::EdgeOutOfRange {
                edge: 9,
                edge_count: 2,
            },
            GraphError::SelfLoop { node: 1 },
            GraphError::DuplicateEdge { a: 0, b: 1 },
            GraphError::InvalidParameter {
                reason: "n must be positive".into(),
            },
            GraphError::Disconnected,
            GraphError::InvalidPartition {
                reason: "block overlap".into(),
            },
            GraphError::Linalg(gossip_linalg::LinalgError::Empty),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn linalg_error_source_chain() {
        let e = GraphError::Linalg(gossip_linalg::LinalgError::Empty);
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&GraphError::Disconnected).is_none());
    }
}
