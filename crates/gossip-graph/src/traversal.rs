//! Breadth-first traversal, connectivity, components, distances, and diameter.
//!
//! Connectivity checks matter throughout the reproduction: the paper's
//! Notation 1 requires `G`, `G₁`, and `G₂` to be connected, and the random
//! graph generators use these routines to validate (or retry) their output.

use crate::{Graph, NodeId, Result};
use std::collections::VecDeque;

/// Breadth-first distances (in hops) from `source` to every node.
///
/// Unreachable nodes get `usize::MAX`.
///
/// # Errors
///
/// Returns [`crate::GraphError::NodeOutOfRange`] if `source` is invalid.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Result<Vec<usize>> {
    graph.check_node(source)?;
    let mut dist = vec![usize::MAX; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for (v, _) in graph.neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    Ok(dist)
}

/// Returns the connected component labels: `labels[i]` is the component index
/// of node `i`, with components numbered `0, 1, …` in order of discovery.
pub fn connected_components(graph: &Graph) -> Vec<usize> {
    let n = graph.node_count();
    let mut labels = vec![usize::MAX; n];
    let mut next = 0usize;
    for start in graph.nodes() {
        if labels[start.index()] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        labels[start.index()] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for (v, _) in graph.neighbors(u) {
                if labels[v.index()] == usize::MAX {
                    labels[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    labels
}

/// Number of connected components; `0` for the empty graph.
pub fn component_count(graph: &Graph) -> usize {
    connected_components(graph)
        .into_iter()
        .max()
        .map(|m| m + 1)
        .unwrap_or(0)
}

/// Returns `true` if the graph is connected.  The empty graph and the
/// single-node graph are considered connected.
pub fn is_connected(graph: &Graph) -> bool {
    graph.node_count() <= 1 || component_count(graph) == 1
}

/// Eccentricity of `source`: the largest BFS distance to any reachable node.
///
/// # Errors
///
/// Returns [`crate::GraphError::NodeOutOfRange`] if `source` is invalid, and
/// [`crate::GraphError::Disconnected`] if some node is unreachable.
pub fn eccentricity(graph: &Graph, source: NodeId) -> Result<usize> {
    let dist = bfs_distances(graph, source)?;
    if dist.contains(&usize::MAX) {
        return Err(crate::GraphError::Disconnected);
    }
    Ok(dist.into_iter().max().unwrap_or(0))
}

/// Diameter: the maximum eccentricity over all nodes (exact, all-pairs BFS).
///
/// # Errors
///
/// Returns [`crate::GraphError::Disconnected`] if the graph is disconnected
/// (and non-trivial).  The empty and single-node graphs have diameter 0.
pub fn diameter(graph: &Graph) -> Result<usize> {
    if graph.node_count() <= 1 {
        return Ok(0);
    }
    let mut best = 0usize;
    for v in graph.nodes() {
        best = best.max(eccentricity(graph, v)?);
    }
    Ok(best)
}

/// Length (in hops) of a shortest path between `a` and `b`, or `None` if `b`
/// is unreachable from `a`.
///
/// # Errors
///
/// Returns [`crate::GraphError::NodeOutOfRange`] for invalid endpoints.
pub fn shortest_path_length(graph: &Graph, a: NodeId, b: NodeId) -> Result<Option<usize>> {
    graph.check_node(b)?;
    let dist = bfs_distances(graph, a)?;
    let d = dist[b.index()];
    Ok(if d == usize::MAX { None } else { Some(d) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;
    use proptest::prelude::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId(0)).unwrap();
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = bfs_distances(&g, NodeId(2)).unwrap();
        assert_eq!(d2, vec![2, 1, 0, 1, 2]);
        assert!(bfs_distances(&g, NodeId(99)).is_err());
    }

    #[test]
    fn components_and_connectivity() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
        assert_eq!(component_count(&g), 3);
        assert!(!is_connected(&g));
        assert!(is_connected(&path(4)));
        assert!(is_connected(&Graph::from_edges(1, &[]).unwrap()));
        assert!(is_connected(&Graph::from_edges(0, &[]).unwrap()));
        assert_eq!(component_count(&Graph::from_edges(0, &[]).unwrap()), 0);
    }

    #[test]
    fn eccentricity_and_diameter() {
        let g = path(5);
        assert_eq!(eccentricity(&g, NodeId(0)).unwrap(), 4);
        assert_eq!(eccentricity(&g, NodeId(2)).unwrap(), 2);
        assert_eq!(diameter(&g).unwrap(), 4);
        // A triangle has diameter 1.
        let t = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(diameter(&t).unwrap(), 1);
        // Disconnected graphs report an error.
        let d = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(diameter(&d).is_err());
        assert!(eccentricity(&d, NodeId(0)).is_err());
        // Trivial graphs have diameter 0.
        assert_eq!(diameter(&Graph::from_edges(1, &[]).unwrap()).unwrap(), 0);
        assert_eq!(diameter(&Graph::from_edges(0, &[]).unwrap()).unwrap(), 0);
    }

    #[test]
    fn shortest_paths() {
        let g = path(4);
        assert_eq!(
            shortest_path_length(&g, NodeId(0), NodeId(3)).unwrap(),
            Some(3)
        );
        assert_eq!(
            shortest_path_length(&g, NodeId(2), NodeId(2)).unwrap(),
            Some(0)
        );
        let d = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            shortest_path_length(&d, NodeId(0), NodeId(3)).unwrap(),
            None
        );
        assert!(shortest_path_length(&d, NodeId(0), NodeId(9)).is_err());
    }

    proptest! {
        #[test]
        fn prop_path_graph_distances_match_index_difference(n in 2usize..40, s in 0usize..40) {
            let s = s % n;
            let g = path(n);
            let d = bfs_distances(&g, NodeId(s)).unwrap();
            for (i, &di) in d.iter().enumerate() {
                prop_assert_eq!(di, i.abs_diff(s));
            }
        }

        #[test]
        fn prop_diameter_at_most_n_minus_one(n in 1usize..30) {
            let g = path(n.max(1));
            prop_assert!(diameter(&g).unwrap() <= n.saturating_sub(1));
        }

        #[test]
        fn prop_component_labels_partition_nodes(n in 1usize..25, seed in 0u64..300) {
            let mut builder = crate::GraphBuilder::new(n);
            let mut state = seed.wrapping_add(3);
            for _ in 0..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = (state >> 33) as usize % n;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let b = (state >> 33) as usize % n;
                if a != b {
                    let _ = builder.add_edge_if_absent(a, b).unwrap();
                }
            }
            let g = builder.build();
            let labels = connected_components(&g);
            prop_assert_eq!(labels.len(), n);
            // Adjacent nodes always share a component label.
            for e in g.edges() {
                prop_assert_eq!(labels[e.u().index()], labels[e.v().index()]);
            }
        }
    }
}
