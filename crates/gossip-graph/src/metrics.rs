//! Summary statistics of a graph: degree distribution, density, and a
//! combined structural report used by the experiment harness when printing
//! workload descriptions.

use crate::{traversal, Graph, Result};
use serde::{Deserialize, Serialize};

/// Structural summary of a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphMetrics {
    /// Number of nodes.
    pub node_count: usize,
    /// Number of edges.
    pub edge_count: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree `2|E|/|V|`.
    pub average_degree: f64,
    /// Edge density `|E| / (|V| choose 2)`.
    pub density: f64,
    /// Number of connected components.
    pub component_count: usize,
    /// Diameter, if the graph is connected.
    pub diameter: Option<usize>,
}

impl GraphMetrics {
    /// Computes the summary.  The diameter is computed only for connected
    /// graphs with at most `max_diameter_nodes` nodes (all-pairs BFS is
    /// quadratic); pass `usize::MAX` to always compute it.
    ///
    /// # Errors
    ///
    /// Propagates traversal errors (none are expected for valid graphs).
    pub fn compute(graph: &Graph, max_diameter_nodes: usize) -> Result<Self> {
        let component_count = traversal::component_count(graph);
        let connected = graph.node_count() <= 1 || component_count == 1;
        let diameter = if connected && graph.node_count() <= max_diameter_nodes {
            Some(traversal::diameter(graph)?)
        } else {
            None
        };
        Ok(GraphMetrics {
            node_count: graph.node_count(),
            edge_count: graph.edge_count(),
            min_degree: graph.min_degree(),
            max_degree: graph.max_degree(),
            average_degree: graph.average_degree(),
            density: density(graph),
            component_count,
            diameter,
        })
    }
}

/// Edge density `|E| / (|V| choose 2)`; `0.0` for graphs with fewer than two
/// nodes.
pub fn density(graph: &Graph) -> f64 {
    let n = graph.node_count();
    if n < 2 {
        0.0
    } else {
        graph.edge_count() as f64 / (n * (n - 1) / 2) as f64
    }
}

/// Degree histogram: `histogram[d]` is the number of nodes with degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut histogram = vec![0usize; graph.max_degree() + 1];
    for v in graph.nodes() {
        histogram[graph.degree(v)] += 1;
    }
    if graph.node_count() == 0 {
        histogram.clear();
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn density_of_complete_graph_is_one() {
        let g = generators::complete(7).unwrap();
        assert!((density(&g) - 1.0).abs() < 1e-12);
        let p = generators::path(7).unwrap();
        assert!(density(&p) < 1.0);
        assert_eq!(density(&crate::Graph::from_edges(1, &[]).unwrap()), 0.0);
    }

    #[test]
    fn degree_histogram_star() {
        let g = generators::star(5).unwrap();
        let h = degree_histogram(&g);
        // Four leaves of degree 1, one hub of degree 4.
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
        assert!(degree_histogram(&crate::Graph::from_edges(0, &[]).unwrap()).is_empty());
    }

    #[test]
    fn metrics_of_dumbbell() {
        let (g, _) = generators::dumbbell(4).unwrap();
        let m = GraphMetrics::compute(&g, usize::MAX).unwrap();
        assert_eq!(m.node_count, 8);
        assert_eq!(m.edge_count, 13);
        assert_eq!(m.component_count, 1);
        assert_eq!(m.min_degree, 3);
        assert_eq!(m.max_degree, 4);
        assert_eq!(m.diameter, Some(3));
        assert!(m.density > 0.0 && m.density < 1.0);
        assert!((m.average_degree - 2.0 * 13.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_skip_diameter_when_too_large_or_disconnected() {
        let (g, _) = generators::dumbbell(4).unwrap();
        let m = GraphMetrics::compute(&g, 4).unwrap();
        assert_eq!(m.diameter, None);
        let disconnected = crate::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let m = GraphMetrics::compute(&disconnected, usize::MAX).unwrap();
        assert_eq!(m.diameter, None);
        assert_eq!(m.component_count, 2);
    }
}
