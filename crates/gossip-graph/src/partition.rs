//! Two-block vertex partitions and their cuts.
//!
//! The paper's setting (Notation 1) is a connected graph `G` partitioned into
//! connected subgraphs `G₁ = (V₁, E₁)` and `G₂ = (V₂, E₂)` with cut edges
//! `E₁₂`.  [`Partition`] captures exactly that decomposition for a concrete
//! [`Graph`], exposes `n₁ = |V₁| ≤ n₂ = |V₂|`, the cut size `|E₁₂|`, the
//! conductance of the cut, and the `min(n₁, n₂)/|E₁₂|` quantity that lower
//! bounds every convex algorithm (Theorem 1).

use crate::{Graph, GraphError, NodeId, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which side of a two-block partition a node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Block {
    /// The first block, `V₁` (by convention the smaller or equal one once the
    /// partition is normalized).
    One,
    /// The second block, `V₂`.
    Two,
}

impl Block {
    /// The opposite block.
    pub fn other(self) -> Block {
        match self {
            Block::One => Block::Two,
            Block::Two => Block::One,
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Block::One => write!(f, "V1"),
            Block::Two => write!(f, "V2"),
        }
    }
}

/// A two-block partition of a graph's vertex set, with the induced cut.
///
/// # Examples
///
/// ```
/// use gossip_graph::{Graph, Partition, NodeId};
///
/// // A path 0 - 1 - 2 - 3 cut between nodes 1 and 2.
/// let graph = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
/// let partition = Partition::from_block_one(&graph, &[NodeId(0), NodeId(1)])?;
/// assert_eq!(partition.cut_edge_count(), 1);
/// assert_eq!(partition.smaller_block_size(), 2);
/// assert!((partition.theorem1_ratio() - 2.0).abs() < 1e-12);
/// # Ok::<(), gossip_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// `membership[i]` is the block of node `i`.
    membership: Vec<Block>,
    block_one: Vec<NodeId>,
    block_two: Vec<NodeId>,
    /// Edge ids of the cut `E₁₂`, in increasing order.
    cut_edges: Vec<crate::EdgeId>,
    /// Number of edges internal to block one.
    internal_edges_one: usize,
    /// Number of edges internal to block two.
    internal_edges_two: usize,
    /// Sum of degrees of block-one vertices (the "volume" of `V₁`).
    volume_one: usize,
    /// Sum of degrees of block-two vertices.
    volume_two: usize,
}

impl Partition {
    /// Builds a partition from the set of nodes forming block one; every other
    /// node goes to block two.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for invalid nodes and
    /// [`GraphError::InvalidPartition`] if block one is empty, contains
    /// duplicates, or covers the whole vertex set.
    pub fn from_block_one(graph: &Graph, block_one: &[NodeId]) -> Result<Self> {
        let n = graph.node_count();
        let mut membership = vec![Block::Two; n];
        let mut count = 0usize;
        for &node in block_one {
            graph.check_node(node)?;
            if membership[node.index()] == Block::One {
                return Err(GraphError::InvalidPartition {
                    reason: format!("node {node} listed twice in block one"),
                });
            }
            membership[node.index()] = Block::One;
            count += 1;
        }
        if count == 0 {
            return Err(GraphError::InvalidPartition {
                reason: "block one is empty".into(),
            });
        }
        if count == n {
            return Err(GraphError::InvalidPartition {
                reason: "block one covers the whole vertex set".into(),
            });
        }
        Self::from_membership(graph, membership)
    }

    /// Builds a partition from a full membership vector (one entry per node).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPartition`] if the vector length does not
    /// match the node count or either block is empty.
    pub fn from_membership(graph: &Graph, membership: Vec<Block>) -> Result<Self> {
        if membership.len() != graph.node_count() {
            return Err(GraphError::InvalidPartition {
                reason: format!(
                    "membership length {} does not match node count {}",
                    membership.len(),
                    graph.node_count()
                ),
            });
        }
        let block_one: Vec<NodeId> = graph
            .nodes()
            .filter(|v| membership[v.index()] == Block::One)
            .collect();
        let block_two: Vec<NodeId> = graph
            .nodes()
            .filter(|v| membership[v.index()] == Block::Two)
            .collect();
        if block_one.is_empty() || block_two.is_empty() {
            return Err(GraphError::InvalidPartition {
                reason: "both blocks must be non-empty".into(),
            });
        }

        let mut cut_edges = Vec::new();
        let mut internal_edges_one = 0usize;
        let mut internal_edges_two = 0usize;
        for id in graph.edge_ids() {
            let edge = graph.edge(id)?;
            let bu = membership[edge.u().index()];
            let bv = membership[edge.v().index()];
            match (bu, bv) {
                (Block::One, Block::One) => internal_edges_one += 1,
                (Block::Two, Block::Two) => internal_edges_two += 1,
                _ => cut_edges.push(id),
            }
        }
        let volume_one = block_one.iter().map(|&v| graph.degree(v)).sum();
        let volume_two = block_two.iter().map(|&v| graph.degree(v)).sum();

        Ok(Partition {
            membership,
            block_one,
            block_two,
            cut_edges,
            internal_edges_one,
            internal_edges_two,
            volume_one,
            volume_two,
        })
    }

    /// The block containing `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the partitioned graph.
    pub fn block_of(&self, node: NodeId) -> Block {
        self.membership[node.index()]
    }

    /// Nodes of block one, in increasing order.
    pub fn block_one(&self) -> &[NodeId] {
        &self.block_one
    }

    /// Nodes of block two, in increasing order.
    pub fn block_two(&self) -> &[NodeId] {
        &self.block_two
    }

    /// Nodes of the requested block.
    pub fn block(&self, block: Block) -> &[NodeId] {
        match block {
            Block::One => &self.block_one,
            Block::Two => &self.block_two,
        }
    }

    /// `|V₁|`.
    pub fn block_one_size(&self) -> usize {
        self.block_one.len()
    }

    /// `|V₂|`.
    pub fn block_two_size(&self) -> usize {
        self.block_two.len()
    }

    /// `min(|V₁|, |V₂|)` — the paper's `n₁` after the w.l.o.g. normalization.
    pub fn smaller_block_size(&self) -> usize {
        self.block_one_size().min(self.block_two_size())
    }

    /// `max(|V₁|, |V₂|)` — the paper's `n₂`.
    pub fn larger_block_size(&self) -> usize {
        self.block_one_size().max(self.block_two_size())
    }

    /// Total number of nodes `n = n₁ + n₂`.
    pub fn node_count(&self) -> usize {
        self.membership.len()
    }

    /// Identifiers of the cut edges `E₁₂`, in increasing order.
    pub fn cut_edges(&self) -> &[crate::EdgeId] {
        &self.cut_edges
    }

    /// `|E₁₂|`.
    pub fn cut_edge_count(&self) -> usize {
        self.cut_edges.len()
    }

    /// Number of edges internal to block one (`|E₁|`).
    pub fn internal_edge_count_one(&self) -> usize {
        self.internal_edges_one
    }

    /// Number of edges internal to block two (`|E₂|`).
    pub fn internal_edge_count_two(&self) -> usize {
        self.internal_edges_two
    }

    /// Volume (sum of degrees) of the requested block.
    pub fn volume(&self, block: Block) -> usize {
        match block {
            Block::One => self.volume_one,
            Block::Two => self.volume_two,
        }
    }

    /// Conductance of the cut: `|E₁₂| / min(vol(V₁), vol(V₂))`.
    ///
    /// Returns `f64::INFINITY` when the smaller volume is zero (isolated
    /// block), which by convention means "no usable cut".
    pub fn conductance(&self) -> f64 {
        let denom = self.volume_one.min(self.volume_two);
        if denom == 0 {
            f64::INFINITY
        } else {
            self.cut_edge_count() as f64 / denom as f64
        }
    }

    /// Edge expansion of the cut: `|E₁₂| / min(|V₁|, |V₂|)`.
    pub fn edge_expansion(&self) -> f64 {
        self.cut_edge_count() as f64 / self.smaller_block_size() as f64
    }

    /// The Theorem 1 quantity `min(|V₁|, |V₂|) / |E₁₂|`: every convex
    /// algorithm has averaging time at least a constant times this value.
    ///
    /// Returns `f64::INFINITY` if the cut is empty (the blocks are
    /// disconnected from each other and no convex algorithm can average at
    /// all).
    pub fn theorem1_ratio(&self) -> f64 {
        if self.cut_edges.is_empty() {
            f64::INFINITY
        } else {
            self.smaller_block_size() as f64 / self.cut_edge_count() as f64
        }
    }

    /// Returns `true` if the given edge crosses the cut.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint of `edge` is out of range for this partition.
    pub fn is_cut_edge(&self, edge: &crate::Edge) -> bool {
        self.block_of(edge.u()) != self.block_of(edge.v())
    }

    /// Returns a partition with the two blocks swapped.
    pub fn swapped(&self) -> Partition {
        Partition {
            membership: self.membership.iter().map(|b| b.other()).collect(),
            block_one: self.block_two.clone(),
            block_two: self.block_one.clone(),
            cut_edges: self.cut_edges.clone(),
            internal_edges_one: self.internal_edges_two,
            internal_edges_two: self.internal_edges_one,
            volume_one: self.volume_two,
            volume_two: self.volume_one,
        }
    }

    /// Returns the partition normalized so block one is the smaller (or equal)
    /// block, matching the paper's `n₁ ≤ n₂` convention.
    pub fn normalized(&self) -> Partition {
        if self.block_one_size() <= self.block_two_size() {
            self.clone()
        } else {
            self.swapped()
        }
    }

    /// Checks that both blocks induce connected subgraphs of `graph`, as
    /// required by the paper's Notation 1.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if either induced subgraph is
    /// disconnected, and propagates [`GraphError::NodeOutOfRange`] if the
    /// partition does not belong to `graph`.
    pub fn require_blocks_connected(&self, graph: &Graph) -> Result<()> {
        for block in [&self.block_one, &self.block_two] {
            let (sub, _) = graph.induced_subgraph(block)?;
            if !crate::traversal::is_connected(&sub) {
                return Err(GraphError::Disconnected);
            }
        }
        Ok(())
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Partition(n1 = {}, n2 = {}, |E12| = {})",
            self.block_one_size(),
            self.block_two_size(),
            self.cut_edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn block_other_and_display() {
        assert_eq!(Block::One.other(), Block::Two);
        assert_eq!(Block::Two.other(), Block::One);
        assert_eq!(Block::One.to_string(), "V1");
        assert_eq!(Block::Two.to_string(), "V2");
    }

    #[test]
    fn from_block_one_splits_path() {
        let g = path4();
        let p = Partition::from_block_one(&g, &[NodeId(0), NodeId(1)]).unwrap();
        assert_eq!(p.block_one_size(), 2);
        assert_eq!(p.block_two_size(), 2);
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.cut_edge_count(), 1);
        assert_eq!(p.internal_edge_count_one(), 1);
        assert_eq!(p.internal_edge_count_two(), 1);
        assert_eq!(p.block_of(NodeId(0)), Block::One);
        assert_eq!(p.block_of(NodeId(3)), Block::Two);
        assert_eq!(p.block(Block::One), &[NodeId(0), NodeId(1)]);
        assert_eq!(p.block(Block::Two), &[NodeId(2), NodeId(3)]);
        assert!(!p.to_string().is_empty());
    }

    #[test]
    fn cut_edge_identification() {
        let g = path4();
        let p = Partition::from_block_one(&g, &[NodeId(0), NodeId(1)]).unwrap();
        let cut = p.cut_edges();
        assert_eq!(cut.len(), 1);
        let edge = g.edge(cut[0]).unwrap();
        assert_eq!(edge.endpoints(), (NodeId(1), NodeId(2)));
        assert!(p.is_cut_edge(&edge));
        let internal = g.edge(g.find_edge(NodeId(0), NodeId(1)).unwrap()).unwrap();
        assert!(!p.is_cut_edge(&internal));
    }

    #[test]
    fn conductance_and_expansion() {
        let g = path4();
        let p = Partition::from_block_one(&g, &[NodeId(0), NodeId(1)]).unwrap();
        // Volumes: deg(0)+deg(1) = 1+2 = 3; deg(2)+deg(3) = 2+1 = 3.
        assert_eq!(p.volume(Block::One), 3);
        assert_eq!(p.volume(Block::Two), 3);
        assert!((p.conductance() - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.edge_expansion() - 0.5).abs() < 1e-12);
        assert!((p.theorem1_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_partitions() {
        let g = path4();
        assert!(Partition::from_block_one(&g, &[]).is_err());
        assert!(
            Partition::from_block_one(&g, &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]).is_err()
        );
        assert!(Partition::from_block_one(&g, &[NodeId(0), NodeId(0)]).is_err());
        assert!(Partition::from_block_one(&g, &[NodeId(9)]).is_err());
        assert!(Partition::from_membership(&g, vec![Block::One; 3]).is_err());
        assert!(Partition::from_membership(&g, vec![Block::One; 4]).is_err());
    }

    #[test]
    fn swapped_and_normalized() {
        let g = path4();
        let p = Partition::from_block_one(&g, &[NodeId(0)]).unwrap();
        assert_eq!(p.block_one_size(), 1);
        assert_eq!(p.block_two_size(), 3);
        let s = p.swapped();
        assert_eq!(s.block_one_size(), 3);
        assert_eq!(s.block_two_size(), 1);
        assert_eq!(s.cut_edge_count(), p.cut_edge_count());
        assert_eq!(s.block_of(NodeId(0)), Block::Two);
        // Normalizing an already-normalized partition is the identity.
        assert_eq!(p.normalized(), p);
        // Normalizing the swapped one returns to block-one-smaller form.
        assert_eq!(s.normalized().block_one_size(), 1);
        assert_eq!(p.smaller_block_size(), 1);
        assert_eq!(p.larger_block_size(), 3);
    }

    #[test]
    fn theorem1_ratio_infinite_without_cut_edges() {
        // Two disconnected edges: 0-1 and 2-3.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let p = Partition::from_block_one(&g, &[NodeId(0), NodeId(1)]).unwrap();
        assert_eq!(p.cut_edge_count(), 0);
        assert!(p.theorem1_ratio().is_infinite());
    }

    #[test]
    fn conductance_infinite_for_isolated_block() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let p = Partition::from_block_one(&g, &[NodeId(2)]).unwrap();
        assert!(p.conductance().is_infinite());
    }

    #[test]
    fn require_blocks_connected_detects_disconnection() {
        // Path 0-1-2-3: blocks {0, 2} and {1, 3} are both disconnected.
        let g = path4();
        let bad = Partition::from_block_one(&g, &[NodeId(0), NodeId(2)]).unwrap();
        assert!(bad.require_blocks_connected(&g).is_err());
        let good = Partition::from_block_one(&g, &[NodeId(0), NodeId(1)]).unwrap();
        assert!(good.require_blocks_connected(&g).is_ok());
    }

    #[test]
    fn block_sizes_always_sum_to_n() {
        let g = path4();
        for split in 1..4 {
            let block: Vec<NodeId> = (0..split).map(NodeId).collect();
            let p = Partition::from_block_one(&g, &block).unwrap();
            assert_eq!(p.block_one_size() + p.block_two_size(), g.node_count());
        }
    }
}
