//! Parameter sweeps.
//!
//! Each experiment varies one knob while holding the rest fixed; the helpers
//! here produce the standard grids (graph sizes doubling from 16 to 512, cut
//! widths, epoch constants) so that benches, examples, and the harness all
//! agree on what was measured.

use crate::Scenario;
use serde::{Deserialize, Serialize};

/// A one-dimensional parameter sweep with a label for tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sweep<T> {
    /// Name of the swept parameter (e.g. `"n"`, `"|E12|"`, `"C"`).
    pub parameter: String,
    /// The values to sweep over, in the order they are run.
    pub values: Vec<T>,
}

impl<T> Sweep<T> {
    /// Creates a sweep.
    pub fn new(parameter: impl Into<String>, values: Vec<T>) -> Self {
        Sweep {
            parameter: parameter.into(),
            values,
        }
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.values.iter()
    }
}

/// Doubling total graph sizes `min_n, 2·min_n, …` up to `max_n` inclusive.
pub fn doubling_sizes(min_n: usize, max_n: usize) -> Sweep<usize> {
    let mut values = Vec::new();
    let mut n = min_n.max(2);
    while n <= max_n {
        values.push(n);
        n *= 2;
    }
    Sweep::new("n", values)
}

/// The dumbbell size sweep used by experiments E1–E3: total sizes doubling
/// from `min_n` to `max_n`, each mapped to a [`Scenario::Dumbbell`] with
/// `half = n/2`.
pub fn dumbbell_size_sweep(min_n: usize, max_n: usize) -> Sweep<Scenario> {
    let sizes = doubling_sizes(min_n.max(8), max_n);
    Sweep::new(
        "n",
        sizes
            .values
            .iter()
            .map(|&n| Scenario::Dumbbell { half: n / 2 })
            .collect(),
    )
}

/// The cut-width sweep used by experiment E6: bridged ER clusters of fixed
/// size with `1, 2, 4, …` bridge edges up to `max_bridges`.
pub fn cut_width_sweep(cluster_size: usize, p: f64, max_bridges: usize) -> Sweep<Scenario> {
    let mut values = Vec::new();
    let mut bridges = 1usize;
    while bridges <= max_bridges {
        values.push(Scenario::BridgedClusters {
            n1: cluster_size,
            n2: cluster_size,
            bridges,
            p,
        });
        bridges *= 2;
    }
    Sweep::new("|E12|", values)
}

/// The epoch-constant sweep used by experiment E6's second half: the paper's
/// `C` over `{1, 2, 4, 8}` (plus any extras supplied).
pub fn epoch_constant_sweep(extra: &[f64]) -> Sweep<f64> {
    let mut values = vec![1.0, 2.0, 4.0, 8.0];
    values.extend_from_slice(extra);
    Sweep::new("C", values)
}

/// Total graph sizes of the scaling-tier experiment: `{1k, 10k, 50k}` nodes
/// in full mode, `{1k, 10k}` in quick mode (used by CI).
pub fn scale_sizes(quick: bool) -> Sweep<usize> {
    let values = if quick {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 50_000]
    };
    Sweep::new("n", values)
}

/// The scaling-tier sweep: for each size in [`scale_sizes`], the four
/// bounded-degree families of [`crate::scenarios::scale_suite`].
pub fn scale_sweep(quick: bool) -> Sweep<Scenario> {
    let mut values = Vec::new();
    for &n in scale_sizes(quick).iter() {
        values.extend(crate::scenarios::scale_suite(n));
    }
    Sweep::new("scenario", values)
}

/// The **simulation** scaling-tier sweep: for each size in [`scale_sizes`],
/// the four asynchronous-relaxation families of
/// [`crate::scenarios::sim_scale_suite`].
pub fn sim_scale_sweep(quick: bool) -> Sweep<Scenario> {
    let mut values = Vec::new();
    for &n in scale_sizes(quick).iter() {
        values.extend(crate::scenarios::sim_scale_suite(n));
    }
    Sweep::new("scenario", values)
}

/// Total graph sizes of the **memory**-scaling tier: `{50k, 250k, 10⁶}`
/// nodes in full mode, `{50k}` in quick mode (CI regenerates the quick
/// report on every push; the 10⁶ rows are the point of the tier and run in
/// full mode only).
pub fn mem_scale_sizes(quick: bool) -> Sweep<usize> {
    let values = if quick {
        vec![50_000]
    } else {
        vec![50_000, 250_000, 1_000_000]
    };
    Sweep::new("n", values)
}

/// The memory-scaling sweep: for each size in [`mem_scale_sizes`], the four
/// asynchronous-relaxation families of
/// [`crate::scenarios::sim_scale_suite`].
pub fn mem_scale_sweep(quick: bool) -> Sweep<Scenario> {
    let mut values = Vec::new();
    for &n in mem_scale_sizes(quick).iter() {
        values.extend(crate::scenarios::sim_scale_suite(n));
    }
    Sweep::new("scenario", values)
}

/// Total graph sizes of the robustness tier: small enough that every
/// (baseline, faulted) run pair finishes quickly even under heavy message
/// loss, large enough that the fault windows cover a meaningful fraction of
/// the run.
pub fn robustness_sizes(quick: bool) -> Sweep<usize> {
    let values = if quick {
        vec![96, 192]
    } else {
        vec![96, 192, 768]
    };
    Sweep::new("n", values)
}

/// The robustness-tier sweep: for each size in [`robustness_sizes`], the
/// four churn cases of [`crate::churn::churn_suite`].
pub fn robustness_sweep(quick: bool) -> Sweep<crate::churn::ChurnCase> {
    let mut values = Vec::new();
    for &n in robustness_sizes(quick).iter() {
        values.extend(crate::churn::churn_suite(n));
    }
    Sweep::new("churn case", values)
}

/// The adversary-tier sweep: for each size in [`robustness_sizes`] (the
/// attack runs share the robustness tier's size budget), the twelve
/// attack × aggregation cases of [`crate::adversary::adversary_suite`].
pub fn adversary_sweep(quick: bool) -> Sweep<crate::adversary::AdversaryCase> {
    let mut values = Vec::new();
    for &n in robustness_sizes(quick).iter() {
        values.extend(crate::adversary::adversary_suite(n));
    }
    Sweep::new("adversary case", values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_sizes_basic() {
        let s = doubling_sizes(16, 128);
        assert_eq!(s.values, vec![16, 32, 64, 128]);
        assert_eq!(s.parameter, "n");
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(doubling_sizes(100, 50).is_empty());
        // Degenerate minimum is clamped to 2.
        assert_eq!(doubling_sizes(0, 4).values, vec![2, 4]);
    }

    #[test]
    fn dumbbell_sweep_halves_sizes() {
        let s = dumbbell_size_sweep(16, 64);
        assert_eq!(s.len(), 3);
        for (scenario, expected_n) in s.iter().zip([16usize, 32, 64]) {
            assert_eq!(scenario.node_count(), expected_n);
            assert!(matches!(scenario, Scenario::Dumbbell { .. }));
        }
    }

    #[test]
    fn cut_width_sweep_doubles_bridges() {
        let s = cut_width_sweep(12, 0.5, 8);
        assert_eq!(s.len(), 4);
        let widths: Vec<usize> = s
            .iter()
            .map(|sc| match sc {
                Scenario::BridgedClusters { bridges, .. } => *bridges,
                _ => panic!("unexpected scenario"),
            })
            .collect();
        assert_eq!(widths, vec![1, 2, 4, 8]);
        assert_eq!(s.parameter, "|E12|");
    }

    #[test]
    fn epoch_constant_sweep_appends_extras() {
        let s = epoch_constant_sweep(&[16.0]);
        assert_eq!(s.values, vec![1.0, 2.0, 4.0, 8.0, 16.0]);
        assert_eq!(epoch_constant_sweep(&[]).len(), 4);
    }

    #[test]
    fn scale_sizes_depend_on_mode() {
        assert_eq!(scale_sizes(true).values, vec![1_000, 10_000]);
        assert_eq!(scale_sizes(false).values, vec![1_000, 10_000, 50_000]);
    }

    #[test]
    fn sim_scale_sweep_covers_all_families_per_size() {
        let s = sim_scale_sweep(true);
        assert_eq!(s.len(), 2 * 4);
        let expected = [
            1_000usize, 1_000, 1_000, 1_000, 10_000, 10_000, 10_000, 10_000,
        ];
        for (scenario, &n) in s.iter().zip(expected.iter()) {
            assert!(scenario.node_count() >= n / 2);
            assert!(scenario.node_count() <= n + n / 8);
        }
        // Full mode reaches 50k.
        let full = sim_scale_sweep(false);
        assert_eq!(full.len(), 3 * 4);
        assert_eq!(full.values.last().unwrap().node_count(), 50_000);
    }

    #[test]
    fn mem_scale_sweep_covers_all_families_per_size() {
        assert_eq!(mem_scale_sizes(true).values, vec![50_000]);
        assert_eq!(
            mem_scale_sizes(false).values,
            vec![50_000, 250_000, 1_000_000]
        );
        let quick = mem_scale_sweep(true);
        assert_eq!(quick.len(), 4);
        for scenario in quick.iter() {
            assert!(scenario.node_count() >= 25_000);
            assert!(scenario.node_count() <= 56_250);
        }
        let full = mem_scale_sweep(false);
        assert_eq!(full.len(), 3 * 4);
        assert_eq!(full.values.last().unwrap().node_count(), 1_000_000);
    }

    #[test]
    fn robustness_sweep_covers_all_cases_per_size() {
        assert_eq!(robustness_sizes(true).values, vec![96, 192]);
        assert_eq!(robustness_sizes(false).values, vec![96, 192, 768]);
        let s = robustness_sweep(true);
        assert_eq!(s.len(), 2 * 4);
        assert_eq!(s.parameter, "churn case");
        for case in s.iter() {
            assert!(!case.name().is_empty());
        }
        assert_eq!(robustness_sweep(false).len(), 3 * 4);
    }

    #[test]
    fn adversary_sweep_covers_all_cases_per_size() {
        let s = adversary_sweep(true);
        assert_eq!(s.len(), 2 * 12);
        assert_eq!(s.parameter, "adversary case");
        for case in s.iter() {
            assert!(!case.name().is_empty());
        }
        assert_eq!(adversary_sweep(false).len(), 3 * 12);
    }

    #[test]
    fn scale_sweep_covers_all_families_per_size() {
        let s = scale_sweep(true);
        assert_eq!(s.len(), 2 * 4);
        assert_eq!(s.parameter, "scenario");
        // Node counts track the requested sizes to within rounding — one
        // expected size per scenario so nothing is silently unchecked.
        let expected = [
            1_000usize, 1_000, 1_000, 1_000, 10_000, 10_000, 10_000, 10_000,
        ];
        assert_eq!(s.len(), expected.len());
        for (scenario, &n) in s.iter().zip(expected.iter()) {
            assert!(scenario.node_count() >= n / 2);
            assert!(scenario.node_count() <= n + n / 8);
        }
    }
}
