//! Named sparse-cut scenarios.
//!
//! A [`Scenario`] is a declarative description of a graph family with a
//! sparse cut; [`Scenario::instantiate`] materializes it (seeded, hence
//! reproducible) into a [`ScenarioInstance`] carrying the graph, its
//! canonical partition, and a human-readable name for experiment tables.

use crate::{Result, WorkloadError};
use gossip_graph::generators;
use gossip_graph::{Graph, Partition};
use serde::{Deserialize, Serialize};

/// A declarative description of a sparse-cut workload graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Scenario {
    /// Two cliques `K_half` joined by one bridge edge (the paper's example).
    Dumbbell {
        /// Nodes per clique.
        half: usize,
    },
    /// Two cliques of different sizes joined by one bridge edge.
    Barbell {
        /// Nodes in the left clique.
        left: usize,
        /// Nodes in the right clique.
        right: usize,
    },
    /// Two connected Erdős–Rényi clusters joined by `bridges` edges.
    BridgedClusters {
        /// Nodes in the first cluster.
        n1: usize,
        /// Nodes in the second cluster.
        n2: usize,
        /// Number of bridge edges.
        bridges: usize,
        /// Within-cluster edge probability.
        p: f64,
    },
    /// A two-block stochastic block model.
    TwoBlockSbm {
        /// Nodes in the first block.
        n1: usize,
        /// Nodes in the second block.
        n2: usize,
        /// Within-block edge probability.
        p_in: f64,
        /// Cross-block edge probability.
        p_out: f64,
    },
    /// Two grids connected by a narrow corridor.
    GridCorridor {
        /// Rows per grid.
        rows: usize,
        /// Columns per grid.
        cols: usize,
        /// Number of corridor edges (≤ rows).
        corridor_width: usize,
    },
    /// Scaling-tier dumbbell: two bounded-degree chordal-ring expanders
    /// joined by one bridge edge (O(n log n) edges instead of the clique
    /// dumbbell's O(n²)).
    ExpanderDumbbell {
        /// Nodes per block.
        half: usize,
    },
    /// Asymmetric scaling-tier dumbbell.
    ExpanderBarbell {
        /// Nodes in the left block.
        left: usize,
        /// Nodes in the right block.
        right: usize,
    },
    /// A ring of cliques, cut into two contiguous arcs (cut width exactly 2).
    RingOfCliques {
        /// Number of cliques on the ring.
        cliques: usize,
        /// Nodes per clique.
        clique_size: usize,
    },
    /// A single chordal ring (cycle plus power-of-two chords) — the scaling
    /// tier's bounded-degree expander building block, *without* a sparse
    /// cut.  The canonical partition splits it into two contiguous arcs,
    /// which gives the simulation tier a well-mixed adversarial initial
    /// condition that still stops in O(T_van) time.
    ChordalRing {
        /// Number of nodes.
        n: usize,
    },
}

impl Scenario {
    /// Builds the graph and its canonical partition.
    ///
    /// # Errors
    ///
    /// Propagates generator parameter errors.
    pub fn instantiate(&self, seed: u64) -> Result<ScenarioInstance> {
        let (graph, partition) = match self {
            Scenario::Dumbbell { half } => generators::dumbbell(*half)?,
            Scenario::Barbell { left, right } => generators::barbell(*left, *right)?,
            Scenario::BridgedClusters { n1, n2, bridges, p } => {
                generators::bridged_clusters(*n1, *n2, *bridges, *p, seed)?
            }
            Scenario::TwoBlockSbm {
                n1,
                n2,
                p_in,
                p_out,
            } => generators::two_block_sbm(*n1, *n2, *p_in, *p_out, seed)?,
            Scenario::GridCorridor {
                rows,
                cols,
                corridor_width,
            } => generators::grid_corridor(*rows, *cols, *corridor_width)?,
            Scenario::ExpanderDumbbell { half } => generators::expander_dumbbell(*half)?,
            Scenario::ExpanderBarbell { left, right } => {
                generators::expander_barbell(*left, *right)?
            }
            Scenario::RingOfCliques {
                cliques,
                clique_size,
            } => generators::ring_of_cliques(*cliques, *clique_size)?,
            Scenario::ChordalRing { n } => {
                let graph = generators::chordal_ring(*n)?;
                let arc: Vec<gossip_graph::NodeId> = (0..n / 2).map(gossip_graph::NodeId).collect();
                let partition = Partition::from_block_one(&graph, &arc)?;
                (graph, partition)
            }
        };
        Ok(ScenarioInstance {
            name: self.name(),
            seed,
            graph,
            partition,
        })
    }

    /// A short name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            Scenario::Dumbbell { half } => format!("dumbbell-{half}"),
            Scenario::Barbell { left, right } => format!("barbell-{left}-{right}"),
            Scenario::BridgedClusters {
                n1, n2, bridges, ..
            } => {
                format!("bridged-{n1}-{n2}-b{bridges}")
            }
            Scenario::TwoBlockSbm { n1, n2, .. } => format!("sbm-{n1}-{n2}"),
            Scenario::GridCorridor {
                rows,
                cols,
                corridor_width,
            } => format!("grid-corridor-{rows}x{cols}-w{corridor_width}"),
            Scenario::ExpanderDumbbell { half } => format!("xdumbbell-{half}"),
            Scenario::ExpanderBarbell { left, right } => format!("xbarbell-{left}-{right}"),
            Scenario::RingOfCliques {
                cliques,
                clique_size,
            } => format!("cliquering-{cliques}x{clique_size}"),
            Scenario::ChordalRing { n } => format!("chordring-{n}"),
        }
    }

    /// The run store's stable identity of this scenario: the family name
    /// followed by **every** generator parameter as `key=value`, floats
    /// rendered with Rust's shortest-round-trip `{}` formatting.
    ///
    /// Unlike [`Scenario::name`] — a display label that drops the float
    /// parameters (`sbm-500-500` says nothing about `p_in`/`p_out`) — the
    /// fingerprint distinguishes any two scenarios that could instantiate
    /// different graphs, because it feeds the journal's trial key: two
    /// scenarios with equal fingerprints *must* be interchangeable.  The
    /// text before the first `(` is the family grouping key used by the
    /// store's analysis views.
    pub fn fingerprint(&self) -> String {
        match self {
            Scenario::Dumbbell { half } => format!("dumbbell(half={half})"),
            Scenario::Barbell { left, right } => format!("barbell(left={left},right={right})"),
            Scenario::BridgedClusters { n1, n2, bridges, p } => {
                format!("bridged(n1={n1},n2={n2},bridges={bridges},p={p})")
            }
            Scenario::TwoBlockSbm {
                n1,
                n2,
                p_in,
                p_out,
            } => format!("sbm(n1={n1},n2={n2},p_in={p_in},p_out={p_out})"),
            Scenario::GridCorridor {
                rows,
                cols,
                corridor_width,
            } => format!("grid-corridor(rows={rows},cols={cols},width={corridor_width})"),
            Scenario::ExpanderDumbbell { half } => format!("xdumbbell(half={half})"),
            Scenario::ExpanderBarbell { left, right } => {
                format!("xbarbell(left={left},right={right})")
            }
            Scenario::RingOfCliques {
                cliques,
                clique_size,
            } => format!("cliquering(cliques={cliques},size={clique_size})"),
            Scenario::ChordalRing { n } => format!("chordring(n={n})"),
        }
    }

    /// Total number of nodes the instantiated graph will have.
    pub fn node_count(&self) -> usize {
        match self {
            Scenario::Dumbbell { half } => 2 * half,
            Scenario::Barbell { left, right } => left + right,
            Scenario::BridgedClusters { n1, n2, .. } => n1 + n2,
            Scenario::TwoBlockSbm { n1, n2, .. } => n1 + n2,
            Scenario::GridCorridor { rows, cols, .. } => 2 * rows * cols,
            Scenario::ExpanderDumbbell { half } => 2 * half,
            Scenario::ExpanderBarbell { left, right } => left + right,
            Scenario::RingOfCliques {
                cliques,
                clique_size,
            } => cliques * clique_size,
            Scenario::ChordalRing { n } => *n,
        }
    }
}

/// A materialized scenario.
#[derive(Debug, Clone)]
pub struct ScenarioInstance {
    /// Scenario name (from [`Scenario::name`]).
    pub name: String,
    /// Seed used to instantiate the scenario.
    pub seed: u64,
    /// The graph.
    pub graph: Graph,
    /// The canonical sparse-cut partition.
    pub partition: Partition,
}

impl ScenarioInstance {
    /// Validates that the instance satisfies the paper's Notation 1
    /// (connected graph, both blocks internally connected, non-empty cut).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] describing the violated
    /// requirement.
    pub fn validate_notation1(&self) -> Result<()> {
        if !gossip_graph::traversal::is_connected(&self.graph) {
            return Err(WorkloadError::InvalidParameter {
                reason: format!("scenario {} is not connected", self.name),
            });
        }
        if self.partition.cut_edge_count() == 0 {
            return Err(WorkloadError::InvalidParameter {
                reason: format!("scenario {} has an empty cut", self.name),
            });
        }
        self.partition
            .require_blocks_connected(&self.graph)
            .map_err(|_| WorkloadError::InvalidParameter {
                reason: format!("scenario {} has a disconnected block", self.name),
            })
    }
}

/// The standard collection of scenarios used by experiment E8 (robustness
/// beyond the clean dumbbell), at a size comparable to `total_nodes`.
pub fn robustness_suite(total_nodes: usize) -> Vec<Scenario> {
    let half = (total_nodes / 2).max(4);
    let other = total_nodes - half;
    // Aim for roughly three cross-block edges in the SBM so the cut stays
    // sparse at every suite size.
    let p_out = (3.0 / (half * other) as f64).min(0.5);
    vec![
        Scenario::Dumbbell { half },
        Scenario::BridgedClusters {
            n1: half,
            n2: other,
            bridges: 2,
            p: 0.4,
        },
        Scenario::TwoBlockSbm {
            n1: half,
            n2: other,
            p_in: 0.5,
            p_out,
        },
        Scenario::GridCorridor {
            rows: 4,
            cols: (half / 4).max(2),
            corridor_width: 1,
        },
    ]
}

/// The scaling-tier scenario suite at a total size close to `total_nodes`:
/// one bounded-degree representative per family (expander dumbbell, expander
/// barbell, ring of cliques, sensor-grid corridor), so every member has
/// O(n log n) edges and can be pushed to tens of thousands of nodes.
pub fn scale_suite(total_nodes: usize) -> Vec<Scenario> {
    let half = (total_nodes / 2).max(3);
    let left = (total_nodes / 3).max(3);
    let right = (total_nodes - left).max(3);
    let clique_size = 16;
    let cliques = (total_nodes / clique_size).max(2);
    // Sensor grid: two rows×cols grids with rows·cols ≈ total/2, rows ≈ cols.
    let side = (total_nodes / 2).max(4);
    let rows = (side as f64).sqrt().round().max(2.0) as usize;
    let cols = (side / rows).max(2);
    vec![
        Scenario::ExpanderDumbbell { half },
        Scenario::ExpanderBarbell { left, right },
        Scenario::RingOfCliques {
            cliques,
            clique_size,
        },
        Scenario::GridCorridor {
            rows,
            cols,
            corridor_width: 1,
        },
    ]
}

/// The **simulation** scaling-tier suite at a total size close to
/// `total_nodes`: the bounded-degree families whose asynchronous relaxation
/// is feasible at tens of thousands of nodes — a plain chordal ring (no
/// sparse cut, so the arc-adversarial initial condition relaxes in O(T_van)
/// time) plus the three sparse-cut families (expander dumbbell, expander
/// barbell, ring of cliques).  Grid corridors are deliberately excluded:
/// their diffusive O(side²) mixing would dominate the tier's wall clock
/// without exercising anything new.
pub fn sim_scale_suite(total_nodes: usize) -> Vec<Scenario> {
    let half = (total_nodes / 2).max(3);
    let left = (total_nodes / 3).max(3);
    let right = (total_nodes - left).max(3);
    let clique_size = 16;
    let cliques = (total_nodes / clique_size).max(2);
    vec![
        Scenario::ChordalRing {
            n: total_nodes.max(3),
        },
        Scenario::ExpanderDumbbell { half },
        Scenario::ExpanderBarbell { left, right },
        Scenario::RingOfCliques {
            cliques,
            clique_size,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_instantiate_and_satisfy_notation1() {
        let scenarios = vec![
            Scenario::Dumbbell { half: 6 },
            Scenario::Barbell { left: 4, right: 9 },
            Scenario::BridgedClusters {
                n1: 8,
                n2: 10,
                bridges: 3,
                p: 0.5,
            },
            Scenario::TwoBlockSbm {
                n1: 8,
                n2: 10,
                p_in: 0.7,
                p_out: 0.05,
            },
            Scenario::GridCorridor {
                rows: 3,
                cols: 4,
                corridor_width: 2,
            },
            Scenario::ExpanderDumbbell { half: 12 },
            Scenario::ExpanderBarbell { left: 8, right: 15 },
            Scenario::RingOfCliques {
                cliques: 4,
                clique_size: 5,
            },
            Scenario::ChordalRing { n: 24 },
        ];
        for scenario in scenarios {
            let instance = scenario.instantiate(42).unwrap();
            assert_eq!(instance.graph.node_count(), scenario.node_count());
            assert!(!instance.name.is_empty());
            assert_eq!(instance.seed, 42);
            instance.validate_notation1().unwrap();
        }
    }

    #[test]
    fn invalid_scenarios_propagate_errors() {
        assert!(Scenario::Dumbbell { half: 1 }.instantiate(0).is_err());
        assert!(Scenario::BridgedClusters {
            n1: 0,
            n2: 5,
            bridges: 1,
            p: 0.5
        }
        .instantiate(0)
        .is_err());
        assert!(Scenario::GridCorridor {
            rows: 3,
            cols: 3,
            corridor_width: 9
        }
        .instantiate(0)
        .is_err());
    }

    #[test]
    fn names_include_parameters() {
        assert_eq!(Scenario::Dumbbell { half: 16 }.name(), "dumbbell-16");
        assert_eq!(
            Scenario::GridCorridor {
                rows: 4,
                cols: 5,
                corridor_width: 2
            }
            .name(),
            "grid-corridor-4x5-w2"
        );
        assert!(Scenario::TwoBlockSbm {
            n1: 3,
            n2: 4,
            p_in: 0.5,
            p_out: 0.1
        }
        .name()
        .contains("sbm"));
    }

    #[test]
    fn fingerprints_carry_every_parameter() {
        // The float parameters name() drops must appear in the fingerprint,
        // at full (round-trip) precision.
        assert_eq!(
            Scenario::TwoBlockSbm {
                n1: 8,
                n2: 10,
                p_in: 0.7,
                p_out: 0.0512345678901
            }
            .fingerprint(),
            "sbm(n1=8,n2=10,p_in=0.7,p_out=0.0512345678901)"
        );
        assert_eq!(
            Scenario::BridgedClusters {
                n1: 8,
                n2: 10,
                bridges: 3,
                p: 0.5
            }
            .fingerprint(),
            "bridged(n1=8,n2=10,bridges=3,p=0.5)"
        );
        assert_eq!(
            Scenario::ChordalRing { n: 1000 }.fingerprint(),
            "chordring(n=1000)"
        );
        // Scenarios equal in name() but different in parameters must differ
        // in fingerprint.
        let a = Scenario::TwoBlockSbm {
            n1: 8,
            n2: 10,
            p_in: 0.7,
            p_out: 0.05,
        };
        let b = Scenario::TwoBlockSbm {
            n1: 8,
            n2: 10,
            p_in: 0.7,
            p_out: 0.06,
        };
        assert_eq!(a.name(), b.name());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn seeded_random_scenarios_are_reproducible() {
        let s = Scenario::BridgedClusters {
            n1: 10,
            n2: 12,
            bridges: 2,
            p: 0.4,
        };
        let a = s.instantiate(7).unwrap();
        let b = s.instantiate(7).unwrap();
        assert_eq!(a.graph, b.graph);
        let c = s.instantiate(8).unwrap();
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn scale_suite_members_are_sparse_and_valid() {
        let suite = scale_suite(480);
        assert_eq!(suite.len(), 4);
        for scenario in suite {
            let instance = scenario.instantiate(13).unwrap();
            instance.validate_notation1().unwrap();
            // Bounded-degree families: far fewer edges than a clique pair.
            let n = instance.graph.node_count() as f64;
            assert!(
                (instance.graph.edge_count() as f64) < n * n.log2(),
                "{} is too dense for the scale tier",
                instance.name
            );
            // Sizes land near the requested total.
            assert!(instance.graph.node_count() >= 240);
            assert!(instance.graph.node_count() <= 520);
        }
    }

    #[test]
    fn scale_scenario_names_are_distinct() {
        assert_eq!(
            Scenario::ExpanderDumbbell { half: 500 }.name(),
            "xdumbbell-500"
        );
        assert_eq!(
            Scenario::ExpanderBarbell {
                left: 300,
                right: 700
            }
            .name(),
            "xbarbell-300-700"
        );
        assert_eq!(
            Scenario::RingOfCliques {
                cliques: 62,
                clique_size: 16
            }
            .name(),
            "cliquering-62x16"
        );
    }

    #[test]
    fn chordal_ring_scenario_has_arc_partition() {
        let scenario = Scenario::ChordalRing { n: 40 };
        assert_eq!(scenario.name(), "chordring-40");
        assert_eq!(scenario.node_count(), 40);
        let instance = scenario.instantiate(3).unwrap();
        instance.validate_notation1().unwrap();
        assert_eq!(instance.partition.block_one_size(), 20);
        // The arcs are NOT a sparse cut: the chords cross freely.
        assert!(instance.partition.cut_edge_count() >= 2);
    }

    #[test]
    fn sim_scale_suite_members_are_sparse_and_valid() {
        let suite = sim_scale_suite(480);
        assert_eq!(suite.len(), 4);
        assert!(matches!(suite[0], Scenario::ChordalRing { .. }));
        for scenario in suite {
            let instance = scenario.instantiate(19).unwrap();
            instance.validate_notation1().unwrap();
            let n = instance.graph.node_count() as f64;
            assert!(
                (instance.graph.edge_count() as f64) < n * n.log2(),
                "{} is too dense for the sim scale tier",
                instance.name
            );
            assert!(instance.graph.node_count() >= 240);
            assert!(instance.graph.node_count() <= 520);
        }
    }

    #[test]
    fn robustness_suite_is_valid() {
        let suite = robustness_suite(24);
        assert_eq!(suite.len(), 4);
        for scenario in suite {
            let instance = scenario.instantiate(11).unwrap();
            instance.validate_notation1().unwrap();
            assert!(instance.partition.cut_edge_count() >= 1);
        }
    }
}
