//! Churn workloads: scenarios paired with deterministic fault environments.
//!
//! The static [`Scenario`] families describe *which* graph is averaged over;
//! a [`FaultProfile`] describes *what goes wrong while it happens* — message
//! loss, the sparse cut flapping, nodes pausing and resuming.  A
//! [`ChurnCase`] pairs the two, and [`FaultProfile::compile`] lowers the
//! declarative profile onto a concrete [`ScenarioInstance`] (whose cut edges
//! and node count it needs) into the engine-level
//! [`gossip_sim::fault::FaultPlan`], using the same ChaCha8 seed discipline
//! as everything else in the workspace so every churn run stays
//! bit-reproducible.

use crate::scenarios::{Scenario, ScenarioInstance};
use gossip_sim::fault::FaultPlan;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A declarative fault environment, lowered to a [`FaultPlan`] per instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultProfile {
    /// No faults: the control arm (compiles to [`FaultPlan::none`], which is
    /// byte-identical to running without a plan at all).
    None,
    /// Every topologically live contact is dropped with probability `p`.
    MessageLoss {
        /// Per-contact drop probability in `[0, 1)`.
        p: f64,
    },
    /// Every cut edge of the instance's canonical partition is down during
    /// `[from_tick, until_tick)` — the sparse cut disappears entirely for a
    /// while, then heals.
    BridgeOutage {
        /// First tick of the outage.
        from_tick: u64,
        /// First tick after the outage.
        until_tick: u64,
    },
    /// Rolling node churn: in each of `cycles` consecutive windows of
    /// `window_ticks` ticks, `concurrent` seeded-randomly chosen nodes are
    /// paused for that window.
    NodeChurn {
        /// How many nodes are down at once.
        concurrent: usize,
        /// Length of each churn window in ticks.
        window_ticks: u64,
        /// Number of consecutive windows.
        cycles: usize,
    },
    /// The cut flaps: in each of `cycles` periods of `period_ticks` ticks,
    /// every cut edge is down for the first `down_ticks` of the period.
    CutFlap {
        /// Length of one up/down period in ticks.
        period_ticks: u64,
        /// How long the cut is down at the start of each period.
        down_ticks: u64,
        /// Number of periods.
        cycles: usize,
    },
}

impl FaultProfile {
    /// A short name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            FaultProfile::None => "none".to_string(),
            FaultProfile::MessageLoss { p } => format!("loss-p{p:.2}"),
            FaultProfile::BridgeOutage {
                from_tick,
                until_tick,
            } => format!("bridge-outage-{from_tick}-{until_tick}"),
            FaultProfile::NodeChurn {
                concurrent,
                window_ticks,
                cycles,
            } => format!("node-churn-{concurrent}x{window_ticks}t-{cycles}c"),
            FaultProfile::CutFlap {
                period_ticks,
                down_ticks,
                cycles,
            } => format!("cut-flap-{down_ticks}of{period_ticks}t-{cycles}c"),
        }
    }

    /// The run store's stable identity of this profile: every parameter at
    /// full precision (the display [`FaultProfile::name`] rounds `p` to two
    /// decimals, which would alias distinct loss rates in the journal).
    pub fn fingerprint(&self) -> String {
        match self {
            FaultProfile::None => "none".to_string(),
            FaultProfile::MessageLoss { p } => format!("loss(p={p})"),
            FaultProfile::BridgeOutage {
                from_tick,
                until_tick,
            } => format!("bridge-outage(from={from_tick},until={until_tick})"),
            FaultProfile::NodeChurn {
                concurrent,
                window_ticks,
                cycles,
            } => {
                format!("node-churn(concurrent={concurrent},window={window_ticks},cycles={cycles})")
            }
            FaultProfile::CutFlap {
                period_ticks,
                down_ticks,
                cycles,
            } => format!("cut-flap(period={period_ticks},down={down_ticks},cycles={cycles})"),
        }
    }

    /// The profile's drop probability (`0.0` for topological profiles) —
    /// convenient for report columns.
    pub fn drop_probability(&self) -> f64 {
        match self {
            FaultProfile::MessageLoss { p } => *p,
            _ => 0.0,
        }
    }

    /// Lowers the profile onto a concrete instance.  `seed` drives the
    /// random choices (which nodes churn) and the engine-level drop stream;
    /// the same `(profile, instance, seed)` triple always yields the same
    /// plan.
    pub fn compile(&self, instance: &ScenarioInstance, seed: u64) -> FaultPlan {
        match self {
            FaultProfile::None => FaultPlan::none(),
            FaultProfile::MessageLoss { p } => FaultPlan::new(seed).with_drop_probability(*p),
            FaultProfile::BridgeOutage {
                from_tick,
                until_tick,
            } => {
                let mut plan = FaultPlan::new(seed);
                for &edge in instance.partition.cut_edges() {
                    plan = plan.with_edge_outage(edge, *from_tick, *until_tick);
                }
                plan
            }
            FaultProfile::NodeChurn {
                concurrent,
                window_ticks,
                cycles,
            } => {
                let n = instance.graph.node_count();
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0DE_C4A2);
                let mut plan = FaultPlan::new(seed);
                for cycle in 0..*cycles {
                    let from = cycle as u64 * window_ticks;
                    let until = from + window_ticks;
                    // Sample `concurrent` distinct nodes for this window.
                    let mut chosen = std::collections::BTreeSet::new();
                    while chosen.len() < (*concurrent).min(n) {
                        chosen.insert(rng.gen_range(0..n));
                    }
                    for node in chosen {
                        plan = plan.with_node_pause(gossip_graph::NodeId(node), from, until);
                    }
                }
                plan
            }
            FaultProfile::CutFlap {
                period_ticks,
                down_ticks,
                cycles,
            } => {
                let mut plan = FaultPlan::new(seed);
                for cycle in 0..*cycles {
                    let from = cycle as u64 * period_ticks;
                    let until = from + down_ticks.min(period_ticks);
                    for &edge in instance.partition.cut_edges() {
                        plan = plan.with_edge_outage(edge, from, until);
                    }
                }
                plan
            }
        }
    }
}

/// A scenario paired with a fault profile: one row of the robustness tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnCase {
    /// The (static) graph family.
    pub scenario: Scenario,
    /// What goes wrong during the run.
    pub fault: FaultProfile,
}

impl ChurnCase {
    /// Creates a case.
    pub fn new(scenario: Scenario, fault: FaultProfile) -> Self {
        ChurnCase { scenario, fault }
    }

    /// A short name used in experiment tables: `scenario+fault`.
    pub fn name(&self) -> String {
        format!("{}+{}", self.scenario.name(), self.fault.name())
    }

    /// The run store's stable identity: `scenario+fault` at full parameter
    /// fidelity (see [`Scenario::fingerprint`]).
    pub fn fingerprint(&self) -> String {
        format!(
            "{}+{}",
            self.scenario.fingerprint(),
            self.fault.fingerprint()
        )
    }
}

/// The churn robustness suite at a total size close to `total_nodes`: the
/// four bounded-degree simulation-tier families, each paired with the fault
/// mode that stresses it most directly — message loss on the well-mixed
/// chordal ring, a full bridge outage on the expander dumbbell (its cut has
/// a single edge), rolling node churn on the expander barbell, and a
/// flapping cut on the ring of cliques (cut width 2).
///
/// Windows scale **quadratically** with `total_nodes`: under the
/// cut-aligned adversarial start these families converge in
/// Θ(n₁/|E₁₂|) simulated time, i.e. Θ(n·|E|) ≈ Θ(n²·polylog) global ticks,
/// so linear-in-`n` windows would be over before the fault mattered.  A
/// `n²`-scaled window keeps each fault active during a comparable fraction
/// of the run at every suite size.
pub fn churn_suite(total_nodes: usize) -> Vec<ChurnCase> {
    let half = (total_nodes / 2).max(3);
    let left = (total_nodes / 3).max(3);
    let right = (total_nodes - left).max(3);
    let clique_size = 16;
    let cliques = (total_nodes / clique_size).max(2);
    let quad = ((total_nodes * total_nodes) as u64).max(256);
    vec![
        ChurnCase::new(
            Scenario::ChordalRing {
                n: total_nodes.max(3),
            },
            FaultProfile::MessageLoss { p: 0.25 },
        ),
        ChurnCase::new(
            Scenario::ExpanderDumbbell { half },
            FaultProfile::BridgeOutage {
                from_tick: 0,
                until_tick: quad / 2,
            },
        ),
        ChurnCase::new(
            Scenario::ExpanderBarbell { left, right },
            FaultProfile::NodeChurn {
                concurrent: (total_nodes / 16).max(1),
                window_ticks: quad / 4,
                cycles: 4,
            },
        ),
        ChurnCase::new(
            Scenario::RingOfCliques {
                cliques,
                clique_size,
            },
            FaultProfile::CutFlap {
                period_ticks: quad / 2,
                down_ticks: quad / 4,
                cycles: 4,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_names_are_distinct_and_parameterized() {
        let names: Vec<String> = [
            FaultProfile::None,
            FaultProfile::MessageLoss { p: 0.25 },
            FaultProfile::BridgeOutage {
                from_tick: 0,
                until_tick: 100,
            },
            FaultProfile::NodeChurn {
                concurrent: 4,
                window_ticks: 50,
                cycles: 3,
            },
            FaultProfile::CutFlap {
                period_ticks: 100,
                down_ticks: 40,
                cycles: 2,
            },
        ]
        .iter()
        .map(FaultProfile::name)
        .collect();
        let unique: std::collections::BTreeSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        assert_eq!(names[1], "loss-p0.25");
        assert_eq!(
            FaultProfile::MessageLoss { p: 0.25 }.drop_probability(),
            0.25
        );
        assert_eq!(FaultProfile::None.drop_probability(), 0.0);
    }

    #[test]
    fn fingerprints_keep_full_precision_where_names_round() {
        let a = FaultProfile::MessageLoss { p: 0.251 };
        let b = FaultProfile::MessageLoss { p: 0.252 };
        assert_eq!(a.name(), b.name(), "display names round to 2 decimals");
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), "loss(p=0.251)");
        let case = ChurnCase::new(Scenario::ExpanderDumbbell { half: 48 }, a);
        assert_eq!(case.fingerprint(), "xdumbbell(half=48)+loss(p=0.251)");
    }

    #[test]
    fn none_profile_compiles_to_the_empty_plan() {
        let instance = Scenario::Dumbbell { half: 4 }.instantiate(1).unwrap();
        let plan = FaultProfile::None.compile(&instance, 9);
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn bridge_outage_covers_exactly_the_cut_edges() {
        let instance = Scenario::RingOfCliques {
            cliques: 4,
            clique_size: 4,
        }
        .instantiate(1)
        .unwrap();
        let profile = FaultProfile::BridgeOutage {
            from_tick: 10,
            until_tick: 50,
        };
        let plan = profile.compile(&instance, 3);
        let mut expected: Vec<_> = instance.partition.cut_edges().to_vec();
        expected.sort();
        assert_eq!(plan.edges_ever_down(), expected);
        assert!(plan.nodes_ever_paused().is_empty());
        assert!(plan.validate(&instance.graph).is_ok());
    }

    #[test]
    fn node_churn_is_seed_deterministic_and_in_range() {
        let instance = Scenario::ExpanderBarbell {
            left: 10,
            right: 22,
        }
        .instantiate(5)
        .unwrap();
        let profile = FaultProfile::NodeChurn {
            concurrent: 3,
            window_ticks: 100,
            cycles: 4,
        };
        let a = profile.compile(&instance, 17);
        let b = profile.compile(&instance, 17);
        assert_eq!(a, b);
        let c = profile.compile(&instance, 18);
        assert_ne!(a, c);
        assert_eq!(a.node_pauses.len(), 3 * 4);
        assert!(a.validate(&instance.graph).is_ok());
        // Every window lies inside its cycle.
        for (i, pause) in a.node_pauses.iter().enumerate() {
            let cycle = (i / 3) as u64;
            assert_eq!(pause.window.from, cycle * 100);
            assert_eq!(pause.window.until, (cycle + 1) * 100);
        }
    }

    #[test]
    fn cut_flap_alternates_down_windows() {
        let instance = Scenario::Dumbbell { half: 4 }.instantiate(1).unwrap();
        let profile = FaultProfile::CutFlap {
            period_ticks: 100,
            down_ticks: 30,
            cycles: 3,
        };
        let plan = profile.compile(&instance, 2);
        // One cut edge on the dumbbell, three cycles.
        assert_eq!(plan.edge_outages.len(), 3);
        for (cycle, outage) in plan.edge_outages.iter().enumerate() {
            assert_eq!(outage.window.from, cycle as u64 * 100);
            assert_eq!(outage.window.until, cycle as u64 * 100 + 30);
        }
        assert!(plan.validate(&instance.graph).is_ok());
    }

    #[test]
    fn churn_suite_cases_instantiate_and_compile() {
        let suite = churn_suite(96);
        assert_eq!(suite.len(), 4);
        let mut names = std::collections::BTreeSet::new();
        for case in &suite {
            let instance = case.scenario.instantiate(7).unwrap();
            instance.validate_notation1().unwrap();
            let plan = case.fault.compile(&instance, 11);
            plan.validate(&instance.graph).unwrap();
            assert!(!plan.is_empty(), "{} compiled to a no-op plan", case.name());
            assert!(names.insert(case.name()), "duplicate case name");
        }
    }
}
