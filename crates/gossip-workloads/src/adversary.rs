//! Adversary workloads: scenarios paired with Byzantine attack profiles and
//! aggregation variants.
//!
//! Mirrors the churn layer one level up the stack: a declarative
//! [`AdversaryProfile`] describes *who misbehaves and how* — a biased
//! minority, extreme-value outliers, stale replayers, a censored cut — and
//! [`AdversaryProfile::compile`] lowers it onto a concrete
//! [`ScenarioInstance`] into the engine-level
//! [`gossip_sim::adversary::AdversaryPlan`], with the same ChaCha8 seed
//! discipline as [`crate::churn::FaultProfile::compile`] so every adversary
//! run stays bit-reproducible.  [`AggregationKind`] selects the update rule
//! the honest nodes defend with (vanilla vs the robust variants from
//! `gossip_core::robust`), and [`AdversaryCase`] pairs scenario, attack and
//! defense into one row of the adversary tier.

use crate::scenarios::{Scenario, ScenarioInstance};
use gossip_core::{MedianNeighborGossip, TrimmedMeanGossip, VanillaGossip};
use gossip_graph::NodeId;
use gossip_sim::adversary::AdversaryPlan;
use gossip_sim::EdgeTickHandler;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Salt for the node-selection stream, so picking *which* nodes misbehave
/// never correlates with the engine-level adversary stream seeded from the
/// same `seed`.
const SELECTION_SALT: u64 = 0xAD5E_C7ED;

/// A declarative attack, lowered to an [`AdversaryPlan`] per instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdversaryProfile {
    /// No adversary: the control arm (compiles to [`AdversaryPlan::none`],
    /// which is byte-identical to running without a plan at all).
    None,
    /// A seeded-randomly chosen minority of `⌊n·fraction⌋` nodes (at least
    /// one, at most `n − 1`) reports values offset by `bias`.
    BiasedMinority {
        /// Fraction of nodes that misbehave, in `[0, 1)`.
        fraction: f64,
        /// Additive report offset.
        bias: f64,
    },
    /// `count` seeded-randomly chosen nodes report `±magnitude` outliers
    /// with seeded random signs.
    ExtremeOutliers {
        /// Number of misbehaving nodes (clamped to `n − 1`).
        count: usize,
        /// Absolute value of every falsified report.
        magnitude: f64,
    },
    /// `count` seeded-randomly chosen nodes replay their own value from
    /// `delay_ticks` global ticks ago.
    StaleReplay {
        /// Number of misbehaving nodes (clamped to `n − 1`).
        count: usize,
        /// Replay delay in global ticks.
        delay_ticks: u64,
    },
    /// Every cut edge of the instance's canonical partition is censored:
    /// each cross-cut contact is suppressed with probability `probability`,
    /// starving exactly the sparse cut the paper's analysis hinges on.
    CensoredCut {
        /// Per-contact suppression probability in `[0, 1]`.
        probability: f64,
    },
}

impl AdversaryProfile {
    /// A short name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            AdversaryProfile::None => "none".to_string(),
            AdversaryProfile::BiasedMinority { fraction, bias } => {
                format!("biased-f{fraction:.2}-b{bias}")
            }
            AdversaryProfile::ExtremeOutliers { count, magnitude } => {
                format!("extreme-{count}x{magnitude}")
            }
            AdversaryProfile::StaleReplay { count, delay_ticks } => {
                format!("stale-{count}x{delay_ticks}t")
            }
            AdversaryProfile::CensoredCut { probability } => {
                format!("censored-cut-p{probability:.2}")
            }
        }
    }

    /// The run store's stable identity of this attack: every parameter at
    /// full precision (the display [`AdversaryProfile::name`] rounds
    /// fractions and probabilities to two decimals, which would alias
    /// distinct attacks in the journal).
    pub fn fingerprint(&self) -> String {
        match self {
            AdversaryProfile::None => "none".to_string(),
            AdversaryProfile::BiasedMinority { fraction, bias } => {
                format!("biased(fraction={fraction},bias={bias})")
            }
            AdversaryProfile::ExtremeOutliers { count, magnitude } => {
                format!("extreme(count={count},magnitude={magnitude})")
            }
            AdversaryProfile::StaleReplay { count, delay_ticks } => {
                format!("stale(count={count},delay={delay_ticks})")
            }
            AdversaryProfile::CensoredCut { probability } => {
                format!("censored-cut(p={probability})")
            }
        }
    }

    /// How many nodes misbehave on an `n`-node instance (`0` for profiles
    /// that only censor edges).  Always leaves at least one honest node, so
    /// the honest-subset drift oracle is well defined.
    pub fn adversary_count(&self, n: usize) -> usize {
        let cap = n.saturating_sub(1);
        match self {
            AdversaryProfile::None | AdversaryProfile::CensoredCut { .. } => 0,
            AdversaryProfile::BiasedMinority { fraction, .. } => {
                (((n as f64) * fraction).floor() as usize).clamp(1, cap.max(1))
            }
            AdversaryProfile::ExtremeOutliers { count, .. }
            | AdversaryProfile::StaleReplay { count, .. } => (*count).min(cap),
        }
    }

    /// The detection threshold the compiled plan flags falsified reports
    /// against: half the attack's static offset, where one exists.
    pub fn detection_threshold(&self) -> Option<f64> {
        match self {
            AdversaryProfile::BiasedMinority { bias, .. } => Some(bias.abs() / 2.0),
            AdversaryProfile::ExtremeOutliers { magnitude, .. } => Some(magnitude / 2.0),
            _ => None,
        }
    }

    /// Lowers the profile onto a concrete instance.  `seed` drives both the
    /// choice of misbehaving nodes (via a salted selection stream) and the
    /// engine-level adversary stream; the same `(profile, instance, seed)`
    /// triple always yields the same plan.
    pub fn compile(&self, instance: &ScenarioInstance, seed: u64) -> AdversaryPlan {
        let n = instance.graph.node_count();
        let chosen = |count: usize| -> Vec<NodeId> {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ SELECTION_SALT);
            let mut picked = BTreeSet::new();
            while picked.len() < count.min(n) {
                picked.insert(rng.gen_range(0..n));
            }
            picked.into_iter().map(NodeId).collect()
        };
        let plan = match self {
            AdversaryProfile::None => return AdversaryPlan::none(),
            AdversaryProfile::BiasedMinority { bias, .. } => chosen(self.adversary_count(n))
                .into_iter()
                .fold(AdversaryPlan::new(seed), |plan, node| {
                    plan.with_biased_injector(node, *bias)
                }),
            AdversaryProfile::ExtremeOutliers { magnitude, .. } => chosen(self.adversary_count(n))
                .into_iter()
                .fold(AdversaryPlan::new(seed), |plan, node| {
                    plan.with_extreme_value_node(node, *magnitude)
                }),
            AdversaryProfile::StaleReplay { delay_ticks, .. } => chosen(self.adversary_count(n))
                .into_iter()
                .fold(AdversaryPlan::new(seed), |plan, node| {
                    plan.with_stale_replay_node(node, *delay_ticks)
                }),
            AdversaryProfile::CensoredCut { probability } => AdversaryPlan::new(seed)
                .with_censoring_bridge(instance.partition.cut_edges().to_vec(), *probability),
        };
        match self.detection_threshold() {
            Some(threshold) => plan.with_detection_threshold(threshold),
            None => plan,
        }
    }
}

/// Which update rule the honest nodes run: the aggregation arm of an
/// adversary-tier row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationKind {
    /// Plain pairwise averaging (`gossip_core::convex::VanillaGossip`).
    Vanilla,
    /// Clamped-innovation trimmed-mean gossip
    /// (`gossip_core::robust::TrimmedMeanGossip` at the default radius).
    TrimmedMean,
    /// Median-of-neighbors gossip
    /// (`gossip_core::robust::MedianNeighborGossip`).
    MedianOfNeighbors,
}

impl AggregationKind {
    /// All variants, in table order.
    pub fn all() -> [AggregationKind; 3] {
        [
            AggregationKind::Vanilla,
            AggregationKind::TrimmedMean,
            AggregationKind::MedianOfNeighbors,
        ]
    }

    /// A short name used in experiment tables (matches the handlers' own
    /// [`EdgeTickHandler::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            AggregationKind::Vanilla => "vanilla",
            AggregationKind::TrimmedMean => "trimmed",
            AggregationKind::MedianOfNeighbors => "median",
        }
    }

    /// Whether the rule conserves total mass exactly — selects which drift
    /// oracle (`gossip_analysis::robust`) bounds the honest-subset mean:
    /// the per-capita falsification bound for conserving rules, the convex
    /// hull bound otherwise.
    pub fn is_mass_conserving(&self) -> bool {
        !matches!(self, AggregationKind::MedianOfNeighbors)
    }

    /// Builds the handler for an `n`-node instance.
    pub fn build(&self, nodes: usize) -> Box<dyn EdgeTickHandler + Send> {
        match self {
            AggregationKind::Vanilla => Box::new(VanillaGossip::new()),
            AggregationKind::TrimmedMean => Box::new(TrimmedMeanGossip::default_radius()),
            AggregationKind::MedianOfNeighbors => Box::new(MedianNeighborGossip::new(nodes)),
        }
    }
}

/// A scenario paired with an attack and a defense: one row of the adversary
/// tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryCase {
    /// The (static) graph family.
    pub scenario: Scenario,
    /// Who misbehaves and how.
    pub attack: AdversaryProfile,
    /// The update rule the honest nodes run.
    pub aggregation: AggregationKind,
}

impl AdversaryCase {
    /// Creates a case.
    pub fn new(scenario: Scenario, attack: AdversaryProfile, aggregation: AggregationKind) -> Self {
        AdversaryCase {
            scenario,
            attack,
            aggregation,
        }
    }

    /// A short name used in experiment tables: `scenario+attack+aggregation`.
    pub fn name(&self) -> String {
        format!(
            "{}+{}+{}",
            self.scenario.name(),
            self.attack.name(),
            self.aggregation.name()
        )
    }

    /// The run store's stable identity: `scenario+attack+aggregation` at
    /// full parameter fidelity (see [`Scenario::fingerprint`]).
    pub fn fingerprint(&self) -> String {
        format!(
            "{}+{}+{}",
            self.scenario.fingerprint(),
            self.attack.fingerprint(),
            self.aggregation.name()
        )
    }
}

/// The adversary suite at a total size close to `total_nodes`: each of the
/// four attacks on the bounded-degree family it stresses most directly —
/// a biased minority on the well-mixed chordal ring, extreme outliers on the
/// expander dumbbell, stale replay on the expander barbell, and censorship
/// of the ring-of-cliques cut — crossed with **every** aggregation variant,
/// so each attack yields a vanilla-vs-robust comparison.
///
/// The stale-replay delay scales quadratically with `total_nodes` for the
/// same reason the churn windows do (`crate::churn::churn_suite`): these
/// families converge in Θ(n²·polylog) global ticks, so a linear delay would
/// be indistinguishable from honesty.
pub fn adversary_suite(total_nodes: usize) -> Vec<AdversaryCase> {
    let half = (total_nodes / 2).max(3);
    let left = (total_nodes / 3).max(3);
    let right = (total_nodes - left).max(3);
    let clique_size = 16;
    let cliques = (total_nodes / clique_size).max(2);
    let quad = ((total_nodes * total_nodes) as u64).max(256);
    let attacks = [
        (
            Scenario::ChordalRing {
                n: total_nodes.max(3),
            },
            AdversaryProfile::BiasedMinority {
                fraction: 0.1,
                bias: 10.0,
            },
        ),
        (
            Scenario::ExpanderDumbbell { half },
            AdversaryProfile::ExtremeOutliers {
                count: (total_nodes / 32).max(1),
                magnitude: 100.0,
            },
        ),
        (
            Scenario::ExpanderBarbell { left, right },
            AdversaryProfile::StaleReplay {
                count: (total_nodes / 32).max(1),
                delay_ticks: quad / 4,
            },
        ),
        (
            Scenario::RingOfCliques {
                cliques,
                clique_size,
            },
            AdversaryProfile::CensoredCut { probability: 0.9 },
        ),
    ];
    attacks
        .into_iter()
        .flat_map(|(scenario, attack)| {
            AggregationKind::all().into_iter().map(move |aggregation| {
                AdversaryCase::new(scenario.clone(), attack.clone(), aggregation)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_names_are_distinct_and_parameterized() {
        let profiles = [
            AdversaryProfile::None,
            AdversaryProfile::BiasedMinority {
                fraction: 0.1,
                bias: 10.0,
            },
            AdversaryProfile::ExtremeOutliers {
                count: 2,
                magnitude: 100.0,
            },
            AdversaryProfile::StaleReplay {
                count: 2,
                delay_ticks: 500,
            },
            AdversaryProfile::CensoredCut { probability: 0.9 },
        ];
        let names: Vec<String> = profiles.iter().map(AdversaryProfile::name).collect();
        let unique: BTreeSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        assert_eq!(names[1], "biased-f0.10-b10");
        assert_eq!(names[4], "censored-cut-p0.90");
    }

    #[test]
    fn fingerprints_keep_full_precision_where_names_round() {
        let a = AdversaryProfile::BiasedMinority {
            fraction: 0.101,
            bias: 10.0,
        };
        let b = AdversaryProfile::BiasedMinority {
            fraction: 0.102,
            bias: 10.0,
        };
        assert_eq!(a.name(), b.name(), "display names round to 2 decimals");
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), "biased(fraction=0.101,bias=10)");
        let case = AdversaryCase::new(
            Scenario::ChordalRing { n: 96 },
            a,
            AggregationKind::TrimmedMean,
        );
        assert_eq!(
            case.fingerprint(),
            "chordring(n=96)+biased(fraction=0.101,bias=10)+trimmed"
        );
    }

    #[test]
    fn none_profile_compiles_to_the_empty_plan() {
        let instance = Scenario::Dumbbell { half: 4 }.instantiate(1).unwrap();
        let plan = AdversaryProfile::None.compile(&instance, 9);
        assert!(plan.is_empty());
        assert_eq!(plan, AdversaryPlan::none());
        assert_eq!(AdversaryProfile::None.adversary_count(8), 0);
    }

    #[test]
    fn biased_minority_selects_a_seeded_fraction() {
        let instance = Scenario::ChordalRing { n: 40 }.instantiate(3).unwrap();
        let profile = AdversaryProfile::BiasedMinority {
            fraction: 0.1,
            bias: 5.0,
        };
        let a = profile.compile(&instance, 21);
        let b = profile.compile(&instance, 21);
        assert_eq!(a, b);
        assert_ne!(a, profile.compile(&instance, 22));
        assert_eq!(a.adversarial_nodes().len(), 4);
        assert_eq!(profile.adversary_count(40), 4);
        assert_eq!(a.detection_threshold, Some(2.5));
        assert!(a.validate(&instance.graph).is_ok());
        // Even a tiny graph keeps one honest node and one adversary.
        assert_eq!(profile.adversary_count(2), 1);
    }

    #[test]
    fn censored_cut_covers_exactly_the_cut_edges() {
        let instance = Scenario::RingOfCliques {
            cliques: 4,
            clique_size: 4,
        }
        .instantiate(1)
        .unwrap();
        let profile = AdversaryProfile::CensoredCut { probability: 0.9 };
        let plan = profile.compile(&instance, 3);
        assert_eq!(plan.censors.len(), 1);
        assert_eq!(plan.censors[0].edges, instance.partition.cut_edges());
        assert_eq!(plan.censors[0].probability, 0.9);
        assert!(plan.adversarial_nodes().is_empty());
        assert!(plan.validate(&instance.graph).is_ok());
    }

    #[test]
    fn aggregation_kinds_build_matching_handlers() {
        for kind in AggregationKind::all() {
            let handler = kind.build(8);
            assert_eq!(handler.name(), kind.name());
        }
        assert!(AggregationKind::Vanilla.is_mass_conserving());
        assert!(AggregationKind::TrimmedMean.is_mass_conserving());
        assert!(!AggregationKind::MedianOfNeighbors.is_mass_conserving());
        // The sharded engine can only accelerate the stateless kernels.
        assert!(AggregationKind::Vanilla
            .build(8)
            .pairwise_kernel()
            .is_some());
        assert!(AggregationKind::TrimmedMean
            .build(8)
            .pairwise_kernel()
            .is_some());
        assert!(AggregationKind::MedianOfNeighbors
            .build(8)
            .pairwise_kernel()
            .is_none());
    }

    #[test]
    fn adversary_suite_cases_instantiate_and_compile() {
        let suite = adversary_suite(96);
        assert_eq!(suite.len(), 12);
        let mut names = BTreeSet::new();
        let mut attacks = BTreeSet::new();
        for case in &suite {
            let instance = case.scenario.instantiate(7).unwrap();
            instance.validate_notation1().unwrap();
            let plan = case.attack.compile(&instance, 11);
            plan.validate(&instance.graph).unwrap();
            assert!(!plan.is_empty(), "{} compiled to a no-op plan", case.name());
            assert!(
                case.attack.adversary_count(instance.graph.node_count())
                    < instance.graph.node_count(),
                "at least one honest node must remain"
            );
            assert!(names.insert(case.name()), "duplicate case name");
            attacks.insert(case.attack.name());
        }
        // Every attack appears with every aggregation variant.
        assert_eq!(attacks.len(), 4);
    }
}
