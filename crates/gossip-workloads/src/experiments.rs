//! The experiment index.
//!
//! The paper is a theory paper without numbered tables or figures, so the
//! reproduction defines one experiment per quantitative claim (see
//! `DESIGN.md` §5).  [`ExperimentId`] enumerates them; [`ExperimentDescriptor`]
//! carries the metadata the harness prints at the top of every table and
//! that `EXPERIMENTS.md` records.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a reproduction experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ExperimentId {
    E1,
    E2,
    E3,
    E4,
    E5,
    E6,
    E7,
    E8,
    E9,
    E10,
    /// The scaling tier (sparse spectral pipeline at large `n`), reported as
    /// `BENCH_scale.json` rather than a paper-claim table.
    Scale,
    /// The **simulation** scaling tier (asynchronous runs with O(1)
    /// incremental per-tick Definition 1 stopping at large `n`), reported as
    /// `BENCH_sim_scale.json`.
    SimScale,
    /// The robustness tier (fault injection: message loss, bridge outages,
    /// node churn, cut flapping — against fault-free baselines), reported as
    /// `BENCH_robustness.json`.
    Robustness,
    /// The performance tier (single-thread event throughput per scale family
    /// plus end-to-end estimator wall-clock at 1 and N jobs, with a built-in
    /// serial-vs-parallel byte-identity oracle), reported as
    /// `BENCH_perf.json`.
    Perf,
    /// The adversary tier (Byzantine attacks — biased minority, extreme
    /// outliers, stale replay, cut censorship — against vanilla and robust
    /// aggregation, with honest-subset drift oracles), reported as
    /// `BENCH_adversary.json`.
    Adversary,
    /// The memory-scaling tier (flat SoA/CSR engine up to 10⁶ nodes with
    /// peak-RSS and throughput accounting, legacy byte-identity checks at
    /// 50k, and the f32 value tier under its error-bound oracle), reported
    /// as `BENCH_mem_scale.json`.
    MemScale,
}

impl ExperimentId {
    /// All experiments, in canonical order.
    pub fn all() -> [ExperimentId; 16] {
        [
            ExperimentId::E1,
            ExperimentId::E2,
            ExperimentId::E3,
            ExperimentId::E4,
            ExperimentId::E5,
            ExperimentId::E6,
            ExperimentId::E7,
            ExperimentId::E8,
            ExperimentId::E9,
            ExperimentId::E10,
            ExperimentId::Scale,
            ExperimentId::SimScale,
            ExperimentId::Robustness,
            ExperimentId::Perf,
            ExperimentId::Adversary,
            ExperimentId::MemScale,
        ]
    }

    /// The token the `experiments` binary accepts for this experiment in
    /// `--only` (upper-case with underscores, e.g. `SIM_SCALE` — unlike
    /// [`fmt::Display`], which follows the Rust variant name).
    pub fn cli_token(self) -> &'static str {
        match self {
            ExperimentId::E1 => "E1",
            ExperimentId::E2 => "E2",
            ExperimentId::E3 => "E3",
            ExperimentId::E4 => "E4",
            ExperimentId::E5 => "E5",
            ExperimentId::E6 => "E6",
            ExperimentId::E7 => "E7",
            ExperimentId::E8 => "E8",
            ExperimentId::E9 => "E9",
            ExperimentId::E10 => "E10",
            ExperimentId::Scale => "SCALE",
            ExperimentId::SimScale => "SIM_SCALE",
            ExperimentId::Robustness => "ROBUSTNESS",
            ExperimentId::Perf => "PERF",
            ExperimentId::Adversary => "ADVERSARY",
            ExperimentId::MemScale => "MEM_SCALE",
        }
    }

    /// The descriptor for this experiment.
    pub fn descriptor(self) -> ExperimentDescriptor {
        match self {
            ExperimentId::E1 => ExperimentDescriptor {
                id: self,
                title: "Convex lower bound on the dumbbell (Theorem 1)",
                claim: "Every convex algorithm needs Ω(min(n1,n2)/|E12|) time; measured \
                        averaging times of vanilla / weighted / random-neighbour gossip grow \
                        linearly in n on the dumbbell.",
                workload: "Dumbbell K_{n/2}–K_{n/2}, one bridge, adversarial cut-aligned \
                           initial condition, n doubling from 16 to 256.",
                bench_target: "gossip-bench/benches/convex_lower_bound.rs + harness table E1",
            },
            ExperimentId::E2 => ExperimentDescriptor {
                id: self,
                title: "Algorithm A upper bound on the dumbbell (Theorem 2)",
                claim: "Algorithm A averages in O(log n ·(T_van(G1)+T_van(G2))) time; measured \
                        times grow polylogarithmically (slowly) in n.",
                workload: "Same dumbbell sweep as E1; Algorithm A with default C.",
                bench_target: "gossip-bench/benches/algorithm_a.rs + harness table E2",
            },
            ExperimentId::E3 => ExperimentDescriptor {
                id: self,
                title: "Headline separation (speed-up of A over convex gossip)",
                claim: "The ratio T_av(vanilla)/T_av(A) grows roughly linearly in n (up to \
                        polylog factors), i.e. the exponential-in-log-n separation of the \
                        paper's introduction.",
                workload: "Ratios of the E1 and E2 measurements; log–log slope fits.",
                bench_target: "harness table E3",
            },
            ExperimentId::E4 => ExperimentDescriptor {
                id: self,
                title: "Section 2 proof mechanics (convex drift limits)",
                claim: "Per cut-edge tick the block mean y(t) moves by at most 2/n1; cut ticks \
                        by time t are Poisson(t·|E12|); var X ≥ n1·y²/n.",
                workload: "Dumbbell n = 128, adversarial initial condition, vanilla gossip, \
                           per-tick trace of y(t) and cut-tick counts.",
                bench_target: "harness table E4",
            },
            ExperimentId::E5 => ExperimentDescriptor {
                id: self,
                title: "Section 3 proof mechanics (epoch contraction and dominance)",
                claim: "Across Algorithm A's epochs, log var X contracts by ≥ (3/2)·log n at \
                        least half the time, never grows by more than log n beyond the \
                        transfer skew, and the partial sums are dominated by the ±log n lazy \
                        walk W̃.",
                workload: "Dumbbell n ∈ {32, 64, 128}, Algorithm A, log-variance sampled at \
                           epoch boundaries; coupled dominating walk.",
                bench_target: "harness table E5",
            },
            ExperimentId::E6 => ExperimentDescriptor {
                id: self,
                title: "Sensitivity to the cut width |E12| and the constant C",
                claim: "Convex averaging time falls like 1/|E12| (Theorem 1 is tight in the cut \
                        width) while Algorithm A is nearly flat; Algorithm A's time scales \
                        linearly in the epoch constant C once C is large enough.",
                workload: "Two ER(0.5) clusters of 24 nodes with 1–16 bridges; C ∈ {1,2,4,8}.",
                bench_target: "gossip-bench/benches/cut_sensitivity.rs + harness table E6",
            },
            ExperimentId::E7 => ExperimentDescriptor {
                id: self,
                title: "Related-work baselines on the sparse cut",
                claim: "Second-order diffusion and two-time-scale (momentum) gossip improve \
                        constants but remain cut-limited: their dumbbell averaging time still \
                        grows polynomially in n, unlike Algorithm A.",
                workload: "Dumbbell sweep n ∈ {16..128}; first/second-order diffusion, \
                           momentum gossip, Algorithm A.",
                bench_target: "gossip-bench/benches/baselines.rs + harness table E7",
            },
            ExperimentId::E8 => ExperimentDescriptor {
                id: self,
                title: "Robustness beyond the clean dumbbell",
                claim: "The separation persists whenever both sides are internally well \
                        connected: bridged ER clusters, two-block SBMs, and grid corridors.",
                workload: "The robustness suite at ~48 nodes, adversarial initial condition.",
                bench_target: "harness table E8",
            },
            ExperimentId::E9 => ExperimentDescriptor {
                id: self,
                title: "Theorem 3 tail bound for the simple random walk",
                claim: "P[S_k ≥ s√k] is below c·e^{−βs²} (c = 1, β = ½) for all tested s.",
                workload: "Simple ±1 walk, k = 64, s ∈ {0.5, 1, 1.5, 2, 2.5}, 20 000 trials.",
                bench_target: "harness table E9",
            },
            ExperimentId::E10 => ExperimentDescriptor {
                id: self,
                title: "Ablation: the non-convex transfer coefficient",
                claim: "The exact-balance coefficient n1·n2/n converges; the paper's literal \
                        n1 oscillates on the balanced dumbbell (block means swap) and fails \
                        to reach the Definition 1 threshold, and convex-range coefficients \
                        (γ ≤ 1) degrade towards vanilla behaviour.",
                workload: "Dumbbell n = 64, Algorithm A with γ ∈ {n1·n2/n, n1, 1, 0.5}.",
                bench_target: "harness table E10",
            },
            ExperimentId::Scale => ExperimentDescriptor {
                id: self,
                title: "Scaling tier: sparse spectral pipeline at large n",
                claim: "The CSR + matrix-free Lanczos path reproduces the dense spectral \
                        quantities (λ₂, λ_max, gossip gap, T_van estimate) and extends them to \
                        tens of thousands of nodes in O(|E|) memory, never materializing an \
                        n×n matrix.",
                workload: "Bounded-degree sparse-cut families (expander dumbbell/barbell, ring \
                           of cliques, sensor-grid corridor) at n ∈ {1k, 10k, 50k} (quick: \
                           {1k, 10k}).",
                bench_target: "gossip-bench runner::run_scale + BENCH_scale.json",
            },
            ExperimentId::SimScale => ExperimentDescriptor {
                id: self,
                title: "Simulation scale tier: O(1) per-event stopping at large n",
                claim: "With the incremental moment tracker, asynchronous runs evaluate \
                        Definition 1 at every tick in O(1) — no O(n) variance pass outside \
                        the scheduled exact refreshes — so 50 000-node relaxations reach the \
                        1/e² stop with per-tick resolution at millions of events per second.",
                workload: "Bounded-degree families (chordal ring with arc-adversarial start; \
                           expander dumbbell/barbell and ring of cliques with uniform start) \
                           at n ∈ {1k, 10k, 50k} (quick: {1k, 10k}), vanilla gossip, global \
                           uniform clock.",
                bench_target: "gossip-bench runner::run_sim_scale + BENCH_sim_scale.json",
            },
            ExperimentId::Robustness => ExperimentDescriptor {
                id: self,
                title: "Robustness tier: Definition 1 stopping under faults",
                claim: "Vanilla gossip still reaches the 1/e² stop under message loss, \
                        transient bridge outages, rolling node churn and a flapping cut; \
                        total mass is conserved exactly (suppressed contacts skip the \
                        pairwise update atomically) and the slowdown over the fault-free \
                        baseline is bounded by the suppressed-contact fraction and the \
                        worst surviving subgraph's connectivity.",
                workload: "Churn suite (chordal ring + 25% loss, expander dumbbell + bridge \
                           outage, expander barbell + node churn, ring of cliques + cut \
                           flap) at n ∈ {96, 192, 768} (quick: {96, 192}), vanilla gossip, \
                           global uniform clock, faulted vs fault-free baseline runs.",
                bench_target: "gossip-bench runner::run_robustness + BENCH_robustness.json",
            },
            ExperimentId::Perf => ExperimentDescriptor {
                id: self,
                title: "Performance tier: event throughput and parallel estimator speedup",
                claim: "The devirtualized fault-free hot loop sustains millions of edge ticks \
                        per second per core, and the deterministic run executor speeds the \
                        15-run averaging-time estimator up near-linearly in the job count \
                        while every seeded output (settling times, quantiles, report rows) \
                        stays byte-identical to the serial order.",
                workload: "The four bounded-degree scale families: one timed vanilla relaxation \
                           each (ticks/s), plus the Definition 1 estimator timed end-to-end at \
                           1 job and at N jobs with bitwise comparison of the two estimates.",
                bench_target: "gossip-bench runner::run_perf + BENCH_perf.json",
            },
            ExperimentId::Adversary => ExperimentDescriptor {
                id: self,
                title: "Adversary tier: Byzantine attacks vs robust aggregation",
                claim: "Against a biased minority, extreme-value outliers, stale replay and \
                        cut censorship, vanilla gossip's honest-subset mean drifts (within \
                        the per-capita falsification bound), while trimmed-mean and \
                        median-of-neighbors gossip bound the drag; every run's drift \
                        satisfies its oracle and an empty adversary plan is byte-identical \
                        to the unmodified engine.",
                workload: "Adversary suite (chordal ring + biased minority, expander \
                           dumbbell + extreme outliers, expander barbell + stale replay, \
                           ring of cliques + censored cut) × {vanilla, trimmed, median} at \
                           n ∈ {96, 192, 768} (quick: {96, 192}), global uniform clock.",
                bench_target: "gossip-bench runner::run_adversary + BENCH_adversary.json",
            },
            ExperimentId::MemScale => ExperimentDescriptor {
                id: self,
                title: "Memory-scale tier: the flat SoA engine at 10⁶ nodes",
                claim: "The packed CSR-companion/struct-of-arrays hot loop is byte-identical \
                        to the legacy layout while completing 10⁶-node relaxations in bounded \
                        memory; peak RSS and ticks/s are reported per family so memory \
                        regressions are as visible as time regressions, and the f32 value \
                        tier converges within its a-priori mean-drift and variance-error \
                        bounds on every row.",
                workload: "The four asynchronous-relaxation families (chordal ring, expander \
                           dumbbell/barbell, ring of cliques) with uniform starts at \
                           n ∈ {50k, 250k, 10⁶} (quick: {50k}), vanilla gossip, global \
                           uniform clock; per row one flat-f64 run (legacy byte-identity \
                           checked at 50k) and one f32-tier run under its oracle.",
                bench_target: "gossip-bench runner::run_mem_scale + BENCH_mem_scale.json",
            },
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Metadata describing one experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentDescriptor {
    /// Which experiment this is.
    pub id: ExperimentId,
    /// One-line title.
    pub title: &'static str,
    /// The paper claim being checked.
    pub claim: &'static str,
    /// The workload and parameters used.
    pub workload: &'static str,
    /// Where the numbers are regenerated.
    pub bench_target: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_experiments_have_distinct_nonempty_descriptors() {
        let all = ExperimentId::all();
        assert_eq!(all.len(), 16);
        let mut titles = BTreeSet::new();
        for id in all {
            let d = id.descriptor();
            assert_eq!(d.id, id);
            assert!(!d.title.is_empty());
            assert!(!d.claim.is_empty());
            assert!(!d.workload.is_empty());
            assert!(!d.bench_target.is_empty());
            titles.insert(d.title);
            assert!(!id.to_string().is_empty());
        }
        assert_eq!(titles.len(), all.len());
    }

    #[test]
    fn cli_tokens_are_distinct_uppercase_and_stable() {
        let mut tokens = BTreeSet::new();
        for id in ExperimentId::all() {
            let token = id.cli_token();
            assert_eq!(token, token.to_uppercase());
            assert!(tokens.insert(token), "duplicate CLI token {token}");
        }
        assert_eq!(ExperimentId::SimScale.cli_token(), "SIM_SCALE");
        assert_eq!(ExperimentId::Adversary.cli_token(), "ADVERSARY");
        assert_eq!(ExperimentId::MemScale.cli_token(), "MEM_SCALE");
    }

    #[test]
    fn ids_are_ordered() {
        let all = ExperimentId::all();
        for pair in all.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
