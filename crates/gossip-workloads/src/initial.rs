//! Initial value distributions.
//!
//! The paper's lower bound is proved for a specific adversarial vector (`+1`
//! on `V₁`, `−n₁/n₂` on `V₂`); the experiments also exercise benign inputs
//! (spikes, uniform noise, smooth fields) to show that the sparse-cut effect
//! is about worst-case inputs aligned with the cut, not an artefact of one
//! vector.

use crate::{Result, WorkloadError};
use gossip_graph::Partition;
use gossip_sim::values::NodeValues;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A recipe for the initial node values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InitialCondition {
    /// The Section 2 adversarial vector: `+1` on block one, `−n₁/n₂` on block
    /// two (zero mean).  Requires a partition.
    AdversarialCut,
    /// All mass on a single node: `n` at node `spike_at`, zero elsewhere.
    Spike {
        /// Index of the node holding the mass.
        spike_at: usize,
    },
    /// Independent uniform values in `[lo, hi]`.
    Uniform {
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint.
        hi: f64,
    },
    /// Independent Gaussian values (Box–Muller from the seeded stream).
    Gaussian {
        /// Mean of each value.
        mean: f64,
        /// Standard deviation of each value.
        std: f64,
    },
    /// A smooth linear field: node `i` holds `i / (n − 1)` (or 0 when n = 1).
    LinearField,
    /// An explicit vector (must match the node count).
    Explicit(Vec<f64>),
}

impl InitialCondition {
    /// Generates the initial values for a graph on `n` nodes.
    ///
    /// `partition` is required for [`InitialCondition::AdversarialCut`] and
    /// ignored otherwise.  `seed` drives the random variants.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for inconsistent
    /// parameters (missing partition, spike index out of range, invalid
    /// ranges, explicit vector of the wrong length).
    pub fn generate(
        &self,
        n: usize,
        partition: Option<&Partition>,
        seed: u64,
    ) -> Result<NodeValues> {
        if n == 0 {
            return Err(WorkloadError::InvalidParameter {
                reason: "initial condition requires at least one node".into(),
            });
        }
        let values: Vec<f64> = match self {
            InitialCondition::AdversarialCut => {
                let partition = partition.ok_or_else(|| WorkloadError::InvalidParameter {
                    reason: "adversarial initial condition requires a partition".into(),
                })?;
                if partition.node_count() != n {
                    return Err(WorkloadError::InvalidParameter {
                        reason: format!(
                            "partition covers {} nodes but the graph has {n}",
                            partition.node_count()
                        ),
                    });
                }
                let n1 = partition.block_one_size() as f64;
                let n2 = partition.block_two_size() as f64;
                let mut v = vec![0.0; n];
                for &node in partition.block_one() {
                    v[node.index()] = 1.0;
                }
                for &node in partition.block_two() {
                    v[node.index()] = -n1 / n2;
                }
                v
            }
            InitialCondition::Spike { spike_at } => {
                if *spike_at >= n {
                    return Err(WorkloadError::InvalidParameter {
                        reason: format!("spike node {spike_at} out of range for {n} nodes"),
                    });
                }
                let mut v = vec![0.0; n];
                v[*spike_at] = n as f64;
                v
            }
            InitialCondition::Uniform { lo, hi } => {
                if !lo.is_finite() || !hi.is_finite() || *lo >= *hi {
                    return Err(WorkloadError::InvalidParameter {
                        reason: format!("invalid uniform range [{lo}, {hi}]"),
                    });
                }
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                (0..n).map(|_| rng.gen_range(*lo..*hi)).collect()
            }
            InitialCondition::Gaussian { mean, std } => {
                if !(std.is_finite() && *std >= 0.0 && mean.is_finite()) {
                    return Err(WorkloadError::InvalidParameter {
                        reason: format!("invalid gaussian parameters mean = {mean}, std = {std}"),
                    });
                }
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                (0..n)
                    .map(|_| {
                        // Box–Muller transform.
                        let u1: f64 = rng.gen::<f64>().max(1e-300);
                        let u2: f64 = rng.gen();
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        mean + std * z
                    })
                    .collect()
            }
            InitialCondition::LinearField => {
                if n == 1 {
                    vec![0.0]
                } else {
                    (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
                }
            }
            InitialCondition::Explicit(values) => {
                if values.len() != n {
                    return Err(WorkloadError::InvalidParameter {
                        reason: format!(
                            "explicit initial condition has {} entries for {n} nodes",
                            values.len()
                        ),
                    });
                }
                values.clone()
            }
        };
        Ok(NodeValues::from_values(values)?)
    }

    /// A short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            InitialCondition::AdversarialCut => "adversarial-cut",
            InitialCondition::Spike { .. } => "spike",
            InitialCondition::Uniform { .. } => "uniform",
            InitialCondition::Gaussian { .. } => "gaussian",
            InitialCondition::LinearField => "linear-field",
            InitialCondition::Explicit(_) => "explicit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::dumbbell;

    #[test]
    fn adversarial_requires_matching_partition() {
        let (_, p) = dumbbell(4).unwrap();
        let v = InitialCondition::AdversarialCut
            .generate(8, Some(&p), 0)
            .unwrap();
        assert!(v.mean().abs() < 1e-12);
        assert_eq!(v.get(gossip_graph::NodeId(0)), 1.0);
        assert_eq!(v.get(gossip_graph::NodeId(7)), -1.0);
        assert!(InitialCondition::AdversarialCut
            .generate(8, None, 0)
            .is_err());
        assert!(InitialCondition::AdversarialCut
            .generate(9, Some(&p), 0)
            .is_err());
    }

    #[test]
    fn spike_and_linear_field() {
        let v = InitialCondition::Spike { spike_at: 2 }
            .generate(5, None, 0)
            .unwrap();
        assert_eq!(v.get(gossip_graph::NodeId(2)), 5.0);
        assert!((v.sum() - 5.0).abs() < 1e-12);
        assert!(InitialCondition::Spike { spike_at: 5 }
            .generate(5, None, 0)
            .is_err());

        let f = InitialCondition::LinearField.generate(5, None, 0).unwrap();
        assert_eq!(f.get(gossip_graph::NodeId(0)), 0.0);
        assert_eq!(f.get(gossip_graph::NodeId(4)), 1.0);
        assert_eq!(
            InitialCondition::LinearField
                .generate(1, None, 0)
                .unwrap()
                .as_slice(),
            &[0.0]
        );
    }

    #[test]
    fn uniform_and_gaussian_are_seeded_and_validated() {
        let a = InitialCondition::Uniform { lo: -1.0, hi: 1.0 }
            .generate(50, None, 7)
            .unwrap();
        let b = InitialCondition::Uniform { lo: -1.0, hi: 1.0 }
            .generate(50, None, 7)
            .unwrap();
        assert_eq!(a, b);
        assert!(a.min().unwrap() >= -1.0 && a.max().unwrap() <= 1.0);
        let c = InitialCondition::Uniform { lo: -1.0, hi: 1.0 }
            .generate(50, None, 8)
            .unwrap();
        assert_ne!(a, c);
        assert!(InitialCondition::Uniform { lo: 1.0, hi: 1.0 }
            .generate(5, None, 0)
            .is_err());

        let g = InitialCondition::Gaussian {
            mean: 2.0,
            std: 0.5,
        }
        .generate(2000, None, 3)
        .unwrap();
        assert!((g.mean() - 2.0).abs() < 0.1);
        assert!((g.variance().sqrt() - 0.5).abs() < 0.05);
        assert!(InitialCondition::Gaussian {
            mean: 0.0,
            std: -1.0
        }
        .generate(5, None, 0)
        .is_err());
    }

    #[test]
    fn explicit_validated() {
        let v = InitialCondition::Explicit(vec![1.0, 2.0])
            .generate(2, None, 0)
            .unwrap();
        assert_eq!(v.as_slice(), &[1.0, 2.0]);
        assert!(InitialCondition::Explicit(vec![1.0])
            .generate(2, None, 0)
            .is_err());
        assert!(InitialCondition::LinearField.generate(0, None, 0).is_err());
    }

    #[test]
    fn names_are_distinct_and_stable() {
        let conditions = [
            InitialCondition::AdversarialCut,
            InitialCondition::Spike { spike_at: 0 },
            InitialCondition::Uniform { lo: 0.0, hi: 1.0 },
            InitialCondition::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            InitialCondition::LinearField,
            InitialCondition::Explicit(vec![]),
        ];
        let names: std::collections::BTreeSet<&str> = conditions.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), conditions.len());
    }
}
