//! Expected-matrix analysis of gossip algorithms in the style of Boyd, Ghosh,
//! Prabhakar and Shah ("Gossip algorithms: design, analysis and
//! applications"), the reference `[2]` the paper compares against.
//!
//! For a randomized pairwise-averaging algorithm, let `W(t)` be the (random)
//! matrix applied at the `t`-th tick and `W̄ = E[W(t)]`.  Boyd et al. show the
//! ε-averaging time (in ticks) is governed by the second-largest eigenvalue
//! of `W̄` (for symmetric `W̄`):
//!
//! `T_ave(ε) ≈ 3·log ε⁻¹ / log(1/λ₂(W̄))`.
//!
//! This module computes `W̄`, its spectral quantities, and the resulting
//! estimate for the vanilla edge-clock algorithm, and exposes the connection
//! to Theorem 1: on a graph with a sparse cut the spectral gap of `W̄` is at
//! most `O(|E₁₂|·|E| / (n₁·n₂))`-ish small, so the Boyd-style tick count is
//! `Ω(min(n₁,n₂)·|E|/|E₁₂|)` — the matrix-analytic face of the same
//! bottleneck.

use crate::{CoreError, Result};
use gossip_graph::{laplacian, Graph, Partition};
use gossip_linalg::{Matrix, SymmetricEigen, Vector};
use serde::{Deserialize, Serialize};

/// Spectral analysis of the expected single-tick gossip matrix `W̄`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GossipMatrixAnalysis {
    /// Number of nodes.
    pub node_count: usize,
    /// Number of edges (ticks arrive at aggregate rate `|E|`).
    pub edge_count: usize,
    /// Second-largest eigenvalue of `W̄` (the largest is always 1).
    pub lambda2: f64,
    /// Smallest eigenvalue of `W̄`.
    pub lambda_min: f64,
    /// Spectral gap `1 − λ₂(W̄)`.
    pub spectral_gap: f64,
}

impl GossipMatrixAnalysis {
    /// Analyses the vanilla edge-clock algorithm on `graph`
    /// (`W̄ = I − L/(2|E|)`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for graphs with no edges and
    /// propagates eigensolver failures.
    pub fn vanilla(graph: &Graph) -> Result<Self> {
        if graph.edge_count() == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "expected-matrix analysis requires at least one edge".into(),
            });
        }
        let expected = laplacian::expected_gossip_matrix(graph)?;
        Self::from_expected_matrix(graph, &expected)
    }

    /// Analyses an arbitrary symmetric doubly-stochastic expected matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the matrix is not square of
    /// the right size, not symmetric, or does not fix the all-ones vector,
    /// and propagates eigensolver failures.
    pub fn from_expected_matrix(graph: &Graph, expected: &Matrix) -> Result<Self> {
        let n = graph.node_count();
        if expected.rows() != n || expected.cols() != n {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "expected matrix is {}x{} but the graph has {n} nodes",
                    expected.rows(),
                    expected.cols()
                ),
            });
        }
        if !expected.is_symmetric(1e-9) {
            return Err(CoreError::InvalidConfig {
                reason: "expected matrix must be symmetric".into(),
            });
        }
        let ones = Vector::ones(n);
        let fixed = expected
            .matvec(&ones)
            .map_err(gossip_graph::GraphError::from)?;
        if fixed
            .distance(&ones)
            .map_err(gossip_graph::GraphError::from)?
            > 1e-6
        {
            return Err(CoreError::InvalidConfig {
                reason: "expected matrix must fix the all-ones vector (conserve mass)".into(),
            });
        }
        let eigen = SymmetricEigen::compute(expected).map_err(gossip_graph::GraphError::from)?;
        let eigenvalues = eigen.eigenvalues();
        let lambda_min = eigenvalues[0];
        // The largest eigenvalue is 1 (all-ones); λ₂ is the largest of the rest.
        let lambda2 = eigenvalues[..eigenvalues.len() - 1]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        Ok(GossipMatrixAnalysis {
            node_count: n,
            edge_count: graph.edge_count(),
            lambda2,
            lambda_min,
            spectral_gap: 1.0 - lambda2,
        })
    }

    /// Boyd-style ε-averaging time in *ticks*:
    /// `3·log ε⁻¹ / log(1/λ₂(W̄))`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `ε ∉ (0, 1)`.
    pub fn epsilon_averaging_ticks(&self, epsilon: f64) -> Result<f64> {
        if !(0.0 < epsilon && epsilon < 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("epsilon must lie in (0, 1), got {epsilon}"),
            });
        }
        if self.lambda2 >= 1.0 {
            return Ok(f64::INFINITY);
        }
        Ok(3.0 * (1.0 / epsilon).ln() / (1.0 / self.lambda2.max(f64::MIN_POSITIVE)).ln())
    }

    /// The same quantity converted to the paper's absolute time (ticks arrive
    /// at aggregate rate `|E|`).
    ///
    /// # Errors
    ///
    /// See [`Self::epsilon_averaging_ticks`].
    pub fn epsilon_averaging_time(&self, epsilon: f64) -> Result<f64> {
        Ok(self.epsilon_averaging_ticks(epsilon)? / self.edge_count as f64)
    }

    /// Upper bound on the spectral gap of `W̄` implied by a two-block
    /// partition, via the Rayleigh quotient of the cut indicator vector:
    /// `gap ≤ |E₁₂|·n / (2·|E|·n₁·n₂)`.
    ///
    /// Small cut ⇒ small gap ⇒ large Boyd-style averaging time: the
    /// matrix-analytic version of Theorem 1.
    pub fn gap_upper_bound_from_cut(&self, partition: &Partition) -> f64 {
        let n1 = partition.block_one_size() as f64;
        let n2 = partition.block_two_size() as f64;
        let n = self.node_count as f64;
        partition.cut_edge_count() as f64 * n / (2.0 * self.edge_count as f64 * n1 * n2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::{complete, dumbbell, path};

    #[test]
    fn vanilla_analysis_on_complete_graph() {
        let n = 8;
        let g = complete(n).unwrap();
        let analysis = GossipMatrixAnalysis::vanilla(&g).unwrap();
        assert_eq!(analysis.node_count, n);
        assert_eq!(analysis.edge_count, n * (n - 1) / 2);
        // W̄ = I − L/(2|E|); for K_n the non-trivial eigenvalues are
        // 1 − n/(2|E|) = 1 − 1/(n−1).
        let expected_lambda2 = 1.0 - 1.0 / (n as f64 - 1.0);
        assert!((analysis.lambda2 - expected_lambda2).abs() < 1e-9);
        assert!((analysis.spectral_gap - 1.0 / (n as f64 - 1.0)).abs() < 1e-9);
        assert!(analysis.lambda_min > -1.0);
    }

    #[test]
    fn rejects_edgeless_and_bad_matrices() {
        let edgeless = gossip_graph::Graph::from_edges(3, &[]).unwrap();
        assert!(GossipMatrixAnalysis::vanilla(&edgeless).is_err());

        let g = path(3).unwrap();
        let wrong_size = Matrix::identity(2);
        assert!(GossipMatrixAnalysis::from_expected_matrix(&g, &wrong_size).is_err());
        let asymmetric = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.5, 0.5, 0.0],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        assert!(GossipMatrixAnalysis::from_expected_matrix(&g, &asymmetric).is_err());
        // Symmetric but does not fix the ones vector.
        let not_stochastic = Matrix::from_diagonal(&[0.5, 0.5, 0.5]);
        assert!(GossipMatrixAnalysis::from_expected_matrix(&g, &not_stochastic).is_err());
    }

    #[test]
    fn epsilon_averaging_time_validation_and_monotonicity() {
        let g = complete(6).unwrap();
        let analysis = GossipMatrixAnalysis::vanilla(&g).unwrap();
        assert!(analysis.epsilon_averaging_ticks(0.0).is_err());
        assert!(analysis.epsilon_averaging_ticks(1.0).is_err());
        let loose = analysis.epsilon_averaging_ticks(0.1).unwrap();
        let tight = analysis.epsilon_averaging_ticks(0.001).unwrap();
        assert!(tight > loose);
        assert!(loose > 0.0);
        let absolute = analysis.epsilon_averaging_time(0.1).unwrap();
        assert!((absolute - loose / g.edge_count() as f64).abs() < 1e-12);
    }

    #[test]
    fn dumbbell_has_tiny_gap_and_huge_boyd_time() {
        let (small_g, small_p) = dumbbell(8).unwrap();
        let (large_g, large_p) = dumbbell(32).unwrap();
        let small = GossipMatrixAnalysis::vanilla(&small_g).unwrap();
        let large = GossipMatrixAnalysis::vanilla(&large_g).unwrap();
        // The spectral gap shrinks as the dumbbell grows…
        assert!(large.spectral_gap < small.spectral_gap);
        // …and the cut-based upper bound on the gap is respected.
        assert!(small.spectral_gap <= small.gap_upper_bound_from_cut(&small_p) + 1e-9);
        assert!(large.spectral_gap <= large.gap_upper_bound_from_cut(&large_p) + 1e-9);
        // The Boyd-style absolute averaging time therefore grows with n,
        // consistent with Theorem 1.
        let t_small = small.epsilon_averaging_time(0.135).unwrap();
        let t_large = large.epsilon_averaging_time(0.135).unwrap();
        assert!(t_large > t_small);
        assert!(t_large > 0.5 * large_p.theorem1_ratio());
    }

    #[test]
    fn boyd_estimate_tracks_empirical_vanilla_time_on_dumbbell() {
        use crate::averaging_time::{AveragingTimeEstimator, EstimatorConfig};
        use crate::convex::VanillaGossip;

        let (graph, partition) = dumbbell(8).unwrap();
        let analysis = GossipMatrixAnalysis::vanilla(&graph).unwrap();
        let predicted = analysis.epsilon_averaging_time(0.135).unwrap();
        let estimator = AveragingTimeEstimator::new(
            EstimatorConfig::new(3).with_runs(4).with_max_time(5_000.0),
        );
        let measured = estimator
            .estimate(&graph, &partition, VanillaGossip::new)
            .unwrap()
            .averaging_time;
        // The closed form and the measurement agree within an order of
        // magnitude (the formula has a factor-3 style constant in it).
        assert!(
            measured < 10.0 * predicted && predicted < 10.0 * measured,
            "Boyd estimate {predicted} vs measured {measured}"
        );
    }
}
