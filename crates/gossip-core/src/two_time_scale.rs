//! An asynchronous two-time-scale / momentum gossip baseline.
//!
//! The paper's introduction points to two related lines of prior work: the
//! second-order diffusive methods of Muthukrishnan–Ghosh–Schultz (values from
//! the previous *two* rounds are combined) and two-time-scale stochastic
//! approximation (Borkar; Konda–Tsitsiklis), where a fast iterate equilibrates
//! between updates of a slow one.  [`TwoTimeScaleGossip`] is the natural
//! asynchronous representative of both ideas in the edge-clock model:
//!
//! * the **fast** time scale is the ordinary pairwise average applied at
//!   every edge tick;
//! * the **slow** time scale is a per-edge memory of the amount transferred
//!   the last time that edge ticked; a fraction `momentum` of that remembered
//!   flow is re-applied on top of the fresh average (heavy-ball style).
//!
//! Because the momentum correction is *antisymmetric* (whatever is added to
//! one endpoint is subtracted from the other), the update conserves the sum
//! exactly — unlike a per-node shift register — so its averaging time is
//! directly comparable with the other algorithms.  The update is **not** a
//! convex combination of current values (for `momentum > 0` it can overshoot
//! the current range), so it sits outside the paper's class `C`; experiment
//! E7 shows that this kind of non-convexity alone still does not escape the
//! sparse-cut bottleneck the way Algorithm A does.

use crate::{CoreError, Result};
use gossip_sim::handler::{EdgeTickContext, EdgeTickHandler};
use gossip_sim::values::NodeValues;

/// Asynchronous momentum ("two-time-scale") gossip.
#[derive(Debug, Clone)]
pub struct TwoTimeScaleGossip {
    momentum: f64,
    /// Last signed flow applied on each edge, oriented from the edge's
    /// smaller endpoint `u` to its larger endpoint `v`.
    last_flow: Vec<f64>,
}

impl TwoTimeScaleGossip {
    /// Creates the rule for a graph with `edge_count` edges.
    ///
    /// `momentum = 0` reduces exactly to vanilla gossip; values up to about
    /// `0.9` accelerate mixing on poorly connected graphs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `momentum ∉ [0, 1)`.
    pub fn new(edge_count: usize, momentum: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&momentum) {
            return Err(CoreError::InvalidConfig {
                reason: format!("momentum must lie in [0, 1), got {momentum}"),
            });
        }
        Ok(TwoTimeScaleGossip {
            momentum,
            last_flow: vec![0.0; edge_count],
        })
    }

    /// Convenience constructor taking the graph directly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `momentum ∉ [0, 1)`.
    pub fn for_graph(graph: &gossip_graph::Graph, momentum: f64) -> Result<Self> {
        Self::new(graph.edge_count(), momentum)
    }

    /// The momentum coefficient.
    pub fn momentum(&self) -> f64 {
        self.momentum
    }
}

impl EdgeTickHandler for TwoTimeScaleGossip {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        let (u, v) = ctx.edge.endpoints();
        let xu = values.get(u);
        let xv = values.get(v);
        // Fresh averaging flow from v to u (vanilla average moves half the
        // difference), plus a momentum fraction of the previous flow on this
        // edge.
        let fresh = 0.5 * (xv - xu);
        let flow = fresh + self.momentum * self.last_flow[ctx.edge_id.index()];
        values.set(u, xu + flow);
        values.set(v, xv - flow);
        self.last_flow[ctx.edge_id.index()] = flow;
    }

    fn name(&self) -> &str {
        "two-time-scale"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convex::VanillaGossip;
    use gossip_graph::generators::{complete, dumbbell, path};
    use gossip_graph::EdgeId;
    use gossip_sim::engine::{AsyncSimulator, SimulationConfig};
    use gossip_sim::stopping::StoppingRule;

    #[test]
    fn constructor_validation() {
        let g = complete(4).unwrap();
        assert!(TwoTimeScaleGossip::for_graph(&g, -0.1).is_err());
        assert!(TwoTimeScaleGossip::for_graph(&g, 1.0).is_err());
        let ok = TwoTimeScaleGossip::for_graph(&g, 0.5).unwrap();
        assert!((ok.momentum() - 0.5).abs() < 1e-15);
        assert_eq!(ok.name(), "two-time-scale");
    }

    #[test]
    fn zero_momentum_equals_vanilla() {
        let g = path(5).unwrap();
        let initial = NodeValues::from_values(vec![5.0, 0.0, 1.0, -2.0, 0.0]).unwrap();
        let mut a = initial.clone();
        let mut b = initial;
        let mut ttsg = TwoTimeScaleGossip::for_graph(&g, 0.0).unwrap();
        let mut vanilla = VanillaGossip::new();
        for t in 0..200u64 {
            let edge = EdgeId((t as usize * 3 + 1) % g.edge_count());
            let ctx = EdgeTickContext {
                graph: &g,
                edge: g.edge(edge).unwrap(),
                edge_id: edge,
                time: t as f64,
                edge_tick_count: 1,
                global_tick_count: t + 1,
            };
            ttsg.on_edge_tick(&mut a, &ctx);
            vanilla.on_edge_tick(&mut b, &ctx);
        }
        for i in 0..5 {
            assert!(
                (a.get(gossip_graph::NodeId(i)) - b.get(gossip_graph::NodeId(i))).abs() < 1e-12
            );
        }
    }

    #[test]
    fn momentum_updates_conserve_sum_exactly() {
        let g = complete(6).unwrap();
        let mut values = NodeValues::from_values(vec![3.0, -1.0, 4.0, -1.0, 5.0, -9.0]).unwrap();
        let sum = values.sum();
        let mut algo = TwoTimeScaleGossip::for_graph(&g, 0.8).unwrap();
        for t in 0..500u64 {
            let edge = EdgeId((t as usize * 7 + 2) % g.edge_count());
            let ctx = EdgeTickContext {
                graph: &g,
                edge: g.edge(edge).unwrap(),
                edge_id: edge,
                time: t as f64,
                edge_tick_count: 1,
                global_tick_count: t + 1,
            };
            algo.on_edge_tick(&mut values, &ctx);
        }
        assert!((values.sum() - sum).abs() < 1e-8);
    }

    #[test]
    fn momentum_update_is_not_convex() {
        // After two ticks of the same edge in the same direction, the value
        // can overshoot the initial range — demonstrating that the rule sits
        // outside class C.
        let g = path(2).unwrap();
        let mut values = NodeValues::from_values(vec![0.0, 1.0]).unwrap();
        let mut algo = TwoTimeScaleGossip::for_graph(&g, 0.9).unwrap();
        let ctx = |k: u64| EdgeTickContext {
            graph: &g,
            edge: g.edge(EdgeId(0)).unwrap(),
            edge_id: EdgeId(0),
            time: k as f64,
            edge_tick_count: k,
            global_tick_count: k,
        };
        algo.on_edge_tick(&mut values, &ctx(1));
        // Both endpoints now hold 0.5; the remembered flow is +0.5 toward u.
        algo.on_edge_tick(&mut values, &ctx(2));
        // Second tick re-applies 0.9·0.5 even though the difference is zero.
        assert!(values.get(gossip_graph::NodeId(0)) > 0.5 + 0.4);
        assert!(values.get(gossip_graph::NodeId(1)) < 0.5 - 0.4);
        assert!(values.max().unwrap() > 0.9);
    }

    #[test]
    fn converges_on_complete_graph() {
        let g = complete(8).unwrap();
        let initial: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let config = SimulationConfig::new(3)
            .with_stopping_rule(StoppingRule::variance_ratio_below(1e-4).or_max_ticks(1_000_000));
        let mut sim = AsyncSimulator::new(
            &g,
            NodeValues::from_values(initial).unwrap(),
            TwoTimeScaleGossip::for_graph(&g, 0.5).unwrap(),
            config,
        )
        .unwrap();
        let outcome = sim.run().unwrap();
        assert!(outcome.converged());
        assert!((outcome.final_values.mean() - 3.5).abs() < 1e-6);
    }

    #[test]
    fn still_cut_limited_on_dumbbell() {
        // Momentum gossip helps, but it still has to push mass through the
        // single bridge edge one tick at a time, so its averaging time on the
        // dumbbell grows with n (unlike Algorithm A).
        let time_for = |half: usize, seed: u64| {
            let (g, p) = dumbbell(half).unwrap();
            let initial = crate::averaging_time::AveragingTimeEstimator::adversarial_initial(&p);
            let config = SimulationConfig::new(seed)
                .with_stopping_rule(StoppingRule::definition1().or_max_time(200_000.0));
            let mut sim = AsyncSimulator::new(
                &g,
                initial,
                TwoTimeScaleGossip::for_graph(&g, 0.7).unwrap(),
                config,
            )
            .unwrap();
            sim.run().unwrap().elapsed_time
        };
        let small: f64 = (0..3).map(|s| time_for(6, s)).sum::<f64>() / 3.0;
        let large: f64 = (0..3).map(|s| time_for(20, s)).sum::<f64>() / 3.0;
        assert!(
            large > 1.5 * small,
            "momentum gossip should still scale with the cut: {small} vs {large}"
        );
    }
}
