//! Gossip averaging algorithms from *Distributed averaging in the presence of
//! a sparse cut* (Narayanan, PODC 2008), together with the baselines it is
//! compared against, an empirical averaging-time estimator implementing the
//! paper's Definition 1, and the theoretical bounds of Theorems 1 and 2.
//!
//! # The algorithm families
//!
//! * [`convex`] — the class `C` of convex pairwise updates
//!   (`x_i ← αx_i + (1−α)x_j` with `α ∈ [0,1]`): [`convex::VanillaGossip`]
//!   (α = ½), [`convex::WeightedConvexGossip`], and
//!   [`convex::RandomNeighborGossip`] (the node-clock natural-random-walk
//!   gossip of Boyd et al., expressed in the edge-clock model).  Theorem 1
//!   lower-bounds every member of this class by `Ω(min(n₁,n₂)/|E₁₂|)` on a
//!   graph with a sparse cut.
//! * [`sparse_cut`] — the paper's non-convex **Algorithm A**
//!   ([`sparse_cut::SparseCutAlgorithm`]): vanilla averaging inside each
//!   block, all cut edges frozen except one designated edge `e_c`, and every
//!   `⌈C(T_van(G₁)+T_van(G₂))·ln n⌉`-th tick of `e_c` performs a large
//!   non-convex mass transfer across the cut.  Theorem 2 upper-bounds its
//!   averaging time by `O(log n · (T_van(G₁)+T_van(G₂)))`.
//! * [`robust`] — outlier-resistant aggregation for Byzantine environments:
//!   [`robust::TrimmedMeanGossip`] (clamped innovations, mass-conserving,
//!   sharded-kernel at the default radius) and
//!   [`robust::MedianNeighborGossip`] (median-of-three with one-contact
//!   memory), benchmarked against the adversaries of `gossip_sim::adversary`.
//! * [`diffusion`] — synchronous first- and second-order diffusive load
//!   balancing (Muthukrishnan–Ghosh–Schultz), the non-convex prior art cited
//!   by the introduction.
//! * [`two_time_scale`] — a two-time-scale averaging baseline in the spirit
//!   of Borkar / Konda–Tsitsiklis.
//!
//! # Measuring averaging time
//!
//! [`averaging_time::AveragingTimeEstimator`] implements Definition 1
//! empirically: it runs many independent simulations, records for each the
//! last time the normalized variance exceeded `1/e²`, and reports the
//! `(1 − 1/e)`-quantile of those settling times.  [`bounds`] provides the
//! closed-form quantities (`Θ(min(n₁,n₂)/|E₁₂|)`, spectral `T_van` estimates,
//! Algorithm A's epoch length) the experiments compare against.
//!
//! # Example
//!
//! Compare vanilla gossip and Algorithm A on the paper's dumbbell graph:
//!
//! ```
//! use gossip_core::averaging_time::{AveragingTimeEstimator, EstimatorConfig};
//! use gossip_core::convex::VanillaGossip;
//! use gossip_core::sparse_cut::{SparseCutAlgorithm, SparseCutConfig};
//! use gossip_graph::generators::dumbbell;
//!
//! let (graph, partition) = dumbbell(20)?;
//! let estimator = AveragingTimeEstimator::new(
//!     EstimatorConfig::new(3).with_runs(5).with_max_time(20_000.0),
//! );
//! let vanilla = estimator.estimate(&graph, &partition, || VanillaGossip::new())?;
//! let algo_a = estimator.estimate(&graph, &partition, || {
//!     SparseCutAlgorithm::from_partition(
//!         &graph,
//!         &partition,
//!         SparseCutConfig::new().with_epoch_constant(2.0),
//!     )
//!     .expect("valid partition")
//! })?;
//! assert!(algo_a.averaging_time < vanilla.averaging_time);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod averaging_time;
pub mod bounds;
pub mod boyd;
pub mod convex;
pub mod diffusion;
pub mod robust;
pub mod sparse_cut;
pub mod two_time_scale;

pub use averaging_time::{AveragingTimeEstimate, AveragingTimeEstimator, EstimatorConfig};
pub use convex::{RandomNeighborGossip, VanillaGossip, WeightedConvexGossip};
pub use robust::{MedianNeighborGossip, TrimmedMeanGossip};
pub use sparse_cut::{SparseCutAlgorithm, SparseCutConfig, TransferCoefficient};

use std::error::Error;
use std::fmt;

/// Errors produced by the algorithm and estimator layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The supplied partition does not describe a usable sparse cut
    /// (e.g. no cut edges).
    InvalidCut {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An underlying graph operation failed.
    Graph(gossip_graph::GraphError),
    /// An underlying simulation failed.
    Sim(gossip_sim::SimError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::InvalidCut { reason } => write!(f, "invalid sparse cut: {reason}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gossip_graph::GraphError> for CoreError {
    fn from(e: gossip_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<gossip_sim::SimError> for CoreError {
    fn from(e: gossip_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errors = [
            CoreError::InvalidConfig {
                reason: "bad".into(),
            },
            CoreError::InvalidCut {
                reason: "no cut edges".into(),
            },
            CoreError::Graph(gossip_graph::GraphError::Disconnected),
            CoreError::Sim(gossip_sim::SimError::NoEdges),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_source_chain() {
        assert!(std::error::Error::source(&CoreError::Graph(
            gossip_graph::GraphError::Disconnected
        ))
        .is_some());
        assert!(
            std::error::Error::source(&CoreError::Sim(gossip_sim::SimError::NoEdges)).is_some()
        );
        assert!(
            std::error::Error::source(&CoreError::InvalidConfig { reason: "x".into() }).is_none()
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
