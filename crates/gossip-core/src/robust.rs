//! Outlier-resistant gossip rules for Byzantine environments.
//!
//! Vanilla gossip trusts whatever a contact reports: a single node
//! injecting `±M` outliers (see `gossip_sim::adversary`) drags every honest
//! neighbour `M/2` per contact.  The two rules here bound that influence:
//!
//! * [`TrimmedMeanGossip`] clamps the per-contact innovation to a fixed
//!   radius `τ` — the pairwise analogue of a trimmed mean.  The update
//!   `x_u ← x_u + ½·clamp(x_v − x_u, −τ, τ)` is exactly antisymmetric
//!   (`Δ_u = −Δ_v`), so it conserves mass like the convex class and stays
//!   subject to the honest-subset drift oracle
//!   (`gossip_analysis::robust::honest_drift_bound`), while an extreme
//!   report moves an honest node by at most `τ/2` no matter how large the
//!   outlier.  At the canonical radius [`DEFAULT_TRIM_RADIUS`] the rule
//!   exposes a [`PairwiseKernel`], so the sharded engine can apply it.
//! * [`MedianNeighborGossip`] averages each endpoint toward the **median**
//!   of {own value, partner's report, previous report seen by this node}.
//!   A single outlier report is outvoted by the node's own value and its
//!   one-contact memory, so isolated extreme injections are rejected
//!   outright.  The median step is not antisymmetric (mass is not exactly
//!   conserved between honest pairs), so the applicable oracle is the
//!   convex-hull bound (`gossip_analysis::robust::hull_drift_bound`), and
//!   the per-node memory makes the rule stateful — no pairwise kernel, the
//!   sharded engine falls back to the legacy loop.

use gossip_sim::handler::{EdgeTickContext, EdgeTickHandler, PairwiseKernel};
use gossip_sim::values::NodeValues;

/// The canonical trim radius at which [`TrimmedMeanGossip`] exposes a
/// pairwise kernel (kernels are plain `fn` pointers and cannot capture a
/// runtime radius).
pub const DEFAULT_TRIM_RADIUS: f64 = 1.0;

/// The [`DEFAULT_TRIM_RADIUS`] update as a capture-free kernel, bit-identical
/// to [`TrimmedMeanGossip::on_edge_tick`] at that radius.
fn trimmed_mean_default_kernel(xu: f64, xv: f64) -> (f64, f64) {
    (
        xu + 0.5 * (xv - xu).clamp(-DEFAULT_TRIM_RADIUS, DEFAULT_TRIM_RADIUS),
        xv + 0.5 * (xu - xv).clamp(-DEFAULT_TRIM_RADIUS, DEFAULT_TRIM_RADIUS),
    )
}

/// Pairwise trimmed-mean gossip: each endpoint moves half-way toward the
/// other's report, but the innovation is clamped to `±radius`.
#[derive(Debug, Clone, Copy)]
pub struct TrimmedMeanGossip {
    radius: f64,
}

impl TrimmedMeanGossip {
    /// Creates the rule with clamp radius `radius`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] unless `radius` is finite
    /// and positive.
    pub fn new(radius: f64) -> crate::Result<Self> {
        if !radius.is_finite() || radius <= 0.0 {
            return Err(crate::CoreError::InvalidConfig {
                reason: format!("trim radius must be finite and positive, got {radius}"),
            });
        }
        Ok(TrimmedMeanGossip { radius })
    }

    /// The rule at the canonical [`DEFAULT_TRIM_RADIUS`] — the only radius
    /// with a sharded-engine kernel.
    pub fn default_radius() -> Self {
        TrimmedMeanGossip {
            radius: DEFAULT_TRIM_RADIUS,
        }
    }

    /// The clamp radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }
}

impl EdgeTickHandler for TrimmedMeanGossip {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        let (u, v) = ctx.edge.endpoints();
        let xu = values.get(u);
        let xv = values.get(v);
        values.set(u, xu + 0.5 * (xv - xu).clamp(-self.radius, self.radius));
        values.set(v, xv + 0.5 * (xu - xv).clamp(-self.radius, self.radius));
    }

    fn name(&self) -> &str {
        "trimmed"
    }

    fn pairwise_kernel(&self) -> Option<PairwiseKernel> {
        if self.radius == DEFAULT_TRIM_RADIUS {
            Some(trimmed_mean_default_kernel)
        } else {
            None
        }
    }
}

/// The middle value of three.
fn median3(a: f64, b: f64, c: f64) -> f64 {
    a.max(b).min(a.max(c)).min(b.max(c))
}

/// Median-of-neighbors gossip: each endpoint averages toward the median of
/// its own value, the partner's report, and the previous report it saw.
#[derive(Debug, Clone)]
pub struct MedianNeighborGossip {
    /// Last report each node received (`None` before its first contact).
    last_seen: Vec<Option<f64>>,
}

impl MedianNeighborGossip {
    /// Creates the rule for a graph with `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        MedianNeighborGossip {
            last_seen: vec![None; nodes],
        }
    }
}

impl EdgeTickHandler for MedianNeighborGossip {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        let (u, v) = ctx.edge.endpoints();
        let xu = values.get(u);
        let xv = values.get(v);
        // Both endpoints decide from the pre-update values, so the rule is
        // order-symmetric.  A node with no memory yet treats the incoming
        // report as its own second vote (first contact behaves like vanilla).
        let m_u = median3(xu, xv, self.last_seen[u.index()].unwrap_or(xv));
        let m_v = median3(xv, xu, self.last_seen[v.index()].unwrap_or(xu));
        values.set(u, 0.5 * (xu + m_u));
        values.set(v, 0.5 * (xv + m_v));
        self.last_seen[u.index()] = Some(xv);
        self.last_seen[v.index()] = Some(xu);
    }

    fn name(&self) -> &str {
        "median"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::{complete, path};
    use gossip_graph::{EdgeId, NodeId};
    use gossip_sim::engine::{AsyncSimulator, SimulationConfig};
    use gossip_sim::stopping::StoppingRule;

    fn ctx_for<'a>(graph: &'a gossip_graph::Graph, edge: EdgeId) -> EdgeTickContext<'a> {
        EdgeTickContext {
            graph,
            edge: graph.edge(edge).unwrap(),
            edge_id: edge,
            time: 1.0,
            edge_tick_count: 1,
            global_tick_count: 1,
        }
    }

    #[test]
    fn trimmed_mean_validates_radius() {
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            assert!(TrimmedMeanGossip::new(bad).is_err(), "radius {bad}");
        }
        let t = TrimmedMeanGossip::new(2.5).unwrap();
        assert_eq!(t.radius(), 2.5);
        assert_eq!(t.name(), "trimmed");
        assert_eq!(
            TrimmedMeanGossip::default_radius().radius(),
            DEFAULT_TRIM_RADIUS
        );
    }

    #[test]
    fn trimmed_mean_clamps_the_innovation_and_conserves_mass() {
        let g = path(2).unwrap();
        // Gap of 100 ≫ radius 1: each endpoint moves only radius/2.
        let mut v = NodeValues::from_values(vec![0.0, 100.0]).unwrap();
        let mut algo = TrimmedMeanGossip::default_radius();
        algo.on_edge_tick(&mut v, &ctx_for(&g, EdgeId(0)));
        assert_eq!(v.as_slice(), &[0.5, 99.5]);
        assert!((v.sum() - 100.0).abs() < 1e-12);
        // Gap within the radius: identical effect to vanilla averaging.
        let mut v = NodeValues::from_values(vec![0.3, 0.7]).unwrap();
        algo.on_edge_tick(&mut v, &ctx_for(&g, EdgeId(0)));
        assert!((v.get(NodeId(0)) - 0.5).abs() < 1e-12);
        assert!((v.get(NodeId(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trimmed_mean_kernel_matches_handler_bitwise_at_default_radius() {
        let g = path(2).unwrap();
        let kernel = TrimmedMeanGossip::default_radius()
            .pairwise_kernel()
            .expect("default radius has a kernel");
        for (a, b) in [
            (0.0, 100.0),
            (0.1, 0.2),
            (-7.3, 11.9),
            (0.3, 0.7),
            (1.0e-300, 3.0e17),
        ] {
            let mut v = NodeValues::from_values(vec![a, b]).unwrap();
            let mut algo = TrimmedMeanGossip::default_radius();
            algo.on_edge_tick(&mut v, &ctx_for(&g, EdgeId(0)));
            let (ku, kv) = kernel(a, b);
            assert_eq!(v.get(NodeId(0)).to_bits(), ku.to_bits());
            assert_eq!(v.get(NodeId(1)).to_bits(), kv.to_bits());
        }
        // Non-canonical radii cannot be expressed as a capture-free kernel.
        assert!(TrimmedMeanGossip::new(2.0)
            .unwrap()
            .pairwise_kernel()
            .is_none());
    }

    #[test]
    fn median3_picks_the_middle_value() {
        for (a, b, c, want) in [
            (1.0, 2.0, 3.0, 2.0),
            (3.0, 1.0, 2.0, 2.0),
            (2.0, 3.0, 1.0, 2.0),
            (5.0, 5.0, 1.0, 5.0),
            (-1.0, -1.0, -1.0, -1.0),
            (0.0, -100.0, 100.0, 0.0),
        ] {
            assert_eq!(median3(a, b, c), want, "median3({a}, {b}, {c})");
        }
    }

    #[test]
    fn median_gossip_rejects_an_isolated_outlier_report() {
        // Node 1 of a path of 3 first hears a sane report from node 0, then
        // an extreme one from node 2: the median of {own, extreme, sane
        // memory} is its own value, so the outlier moves it at most half-way
        // toward itself — i.e. not at all.
        let g = path(3).unwrap();
        let mut v = NodeValues::from_values(vec![1.0, 1.0, 1000.0]).unwrap();
        let mut algo = MedianNeighborGossip::new(3);
        algo.on_edge_tick(&mut v, &ctx_for(&g, EdgeId(0))); // 0–1: both at 1.0
        assert_eq!(v.get(NodeId(1)), 1.0);
        algo.on_edge_tick(&mut v, &ctx_for(&g, EdgeId(1))); // 1–2: 2 reports 1000
                                                            // median3(1.0, 1000.0, 1.0) = 1.0 → node 1 does not move.
        assert_eq!(v.get(NodeId(1)), 1.0);
        // Node 2 hears 1.0 for the first time (vanilla-like first contact).
        assert_eq!(v.get(NodeId(2)), 500.5);
        assert_eq!(algo.name(), "median");
    }

    #[test]
    fn median_gossip_is_stateful_and_has_no_kernel() {
        assert!(MedianNeighborGossip::new(4).pairwise_kernel().is_none());
    }

    #[test]
    fn robust_rules_converge_on_honest_complete_graphs() {
        let g = complete(8).unwrap();
        let initial: Vec<f64> = (0..8).map(|i| (i as f64) / 8.0).collect();
        let rule = StoppingRule::variance_ratio_below(1e-6).or_max_ticks(2_000_000);
        for handler in [
            Box::new(TrimmedMeanGossip::default_radius()) as Box<dyn EdgeTickHandler>,
            Box::new(MedianNeighborGossip::new(8)),
        ] {
            let name = handler.name().to_string();
            let config = SimulationConfig::new(5).with_stopping_rule(rule.clone());
            let mut sim = AsyncSimulator::new(
                &g,
                NodeValues::from_values(initial.clone()).unwrap(),
                handler,
                config,
            )
            .unwrap();
            let outcome = sim.run().unwrap();
            assert!(outcome.converged(), "{name} did not converge");
            // Both rules keep values inside the initial hull.
            assert!(outcome.final_values.min().unwrap() >= 0.0 - 1e-12, "{name}");
            assert!(
                outcome.final_values.max().unwrap() <= 7.0 / 8.0 + 1e-12,
                "{name}"
            );
        }
    }

    #[test]
    fn trimmed_default_kernel_shards_bit_identically() {
        // The default-radius kernel is what the sharded engine applies; all
        // shard counts must agree bit-for-bit.
        let g = complete(12).unwrap();
        let initial: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin()).collect();
        let run = |shards: usize| {
            let config = SimulationConfig::new(19)
                .with_stopping_rule(StoppingRule::variance_ratio_below(1e-6).or_max_ticks(500_000))
                .with_shards(shards);
            let mut sim = AsyncSimulator::new(
                &g,
                NodeValues::from_values(initial.clone()).unwrap(),
                TrimmedMeanGossip::default_radius(),
                config,
            )
            .unwrap();
            sim.run().unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert!(one.converged());
        assert_eq!(one.total_ticks, four.total_ticks);
        for (a, b) in one
            .final_values
            .as_slice()
            .iter()
            .zip(four.final_values.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
