//! Closed-form quantities from the paper: the Theorem 1 lower bound for
//! convex algorithms, the Theorem 2 upper bound for Algorithm A, spectral
//! estimates of the vanilla averaging time `T_van`, and Algorithm A's epoch
//! length.
//!
//! All times are expressed in the paper's absolute time (every edge carries a
//! rate-1 Poisson clock), so they are directly comparable with the
//! `elapsed_time` reported by the asynchronous simulator.

use crate::Result;
use gossip_graph::partition::Block;
use gossip_graph::spectral::SpectralProfile;
use gossip_graph::{Graph, Partition};
use serde::{Deserialize, Serialize};

/// Theorem 1: every convex algorithm needs at least (a constant times)
/// `min(n₁, n₂) / |E₁₂|` absolute time to average.
///
/// Returns `f64::INFINITY` when the cut is empty.
pub fn theorem1_lower_bound(partition: &Partition) -> f64 {
    partition.theorem1_ratio()
}

/// Theorem 1 from raw parameters.
///
/// Returns `f64::INFINITY` when `cut_edges == 0`.
pub fn theorem1_lower_bound_raw(n1: usize, n2: usize, cut_edges: usize) -> f64 {
    if cut_edges == 0 {
        f64::INFINITY
    } else {
        n1.min(n2) as f64 / cut_edges as f64
    }
}

/// Theorem 2: Algorithm A's averaging time is
/// `O(log n · (T_van(G₁) + T_van(G₂)))`.  This helper returns
/// `epoch_constant · ln n · t_van_sum`, the same quantity Algorithm A uses for
/// its epoch length, which is the natural per-epoch time unit of the bound.
pub fn theorem2_upper_bound(epoch_constant: f64, t_van_sum: f64, n: usize) -> f64 {
    epoch_constant * t_van_sum * (n.max(2) as f64).ln()
}

/// Spectral estimate of the vanilla averaging time of a standalone connected
/// graph, in absolute time:
/// `T_van ≈ (2 + ln n) / (gap · |E|)` where `gap = λ₂(L)/(2|E|)` is the
/// spectral gap of the expected single-tick matrix `W̄ = I − L/(2|E|)`.
///
/// # Errors
///
/// Propagates [`gossip_graph::GraphError`] for degenerate or disconnected
/// graphs.
pub fn t_van_spectral(graph: &Graph) -> Result<f64> {
    let profile = SpectralProfile::compute(graph)?;
    Ok(profile.vanilla_averaging_time_estimate())
}

/// Spectral estimate of `T_van` for one block of a partition, computed on the
/// induced subgraph.
///
/// A single-node block trivially has `T_van = 0`.
///
/// # Errors
///
/// Propagates [`gossip_graph::GraphError`], notably
/// [`gossip_graph::GraphError::Disconnected`] when the block does not induce
/// a connected subgraph (the paper's Notation 1 requires it to).
pub fn t_van_spectral_block(graph: &Graph, partition: &Partition, block: Block) -> Result<f64> {
    let nodes = partition.block(block);
    if nodes.len() <= 1 {
        return Ok(0.0);
    }
    let (subgraph, _) = graph.induced_subgraph(nodes)?;
    t_van_spectral(&subgraph)
}

/// Algorithm A's epoch length in ticks of the designated edge:
/// `max(1, ⌈C · t_van_sum · ln n⌉)`.
pub fn epoch_length_ticks(epoch_constant: f64, t_van_sum: f64, n: f64) -> u64 {
    let raw = epoch_constant * t_van_sum * n.max(2.0).ln();
    raw.ceil().max(1.0) as u64
}

/// Everything the experiment harness reports about an instance's theoretical
/// quantities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundsSummary {
    /// Number of nodes `n`.
    pub n: usize,
    /// Smaller block size `n₁`.
    pub n1: usize,
    /// Larger block size `n₂`.
    pub n2: usize,
    /// Cut size `|E₁₂|`.
    pub cut_edges: usize,
    /// Theorem 1 lower-bound quantity `min(n₁,n₂)/|E₁₂|`.
    pub convex_lower_bound: f64,
    /// Spectral `T_van(G₁)` estimate.
    pub t_van_block_one: f64,
    /// Spectral `T_van(G₂)` estimate.
    pub t_van_block_two: f64,
    /// Theorem 2 quantity `C·ln n·(T_van(G₁)+T_van(G₂))` with `C` as given.
    pub theorem2_upper_bound: f64,
    /// The epoch constant used for the Theorem 2 quantity.
    pub epoch_constant: f64,
}

impl BoundsSummary {
    /// Computes the summary for a partitioned graph.
    ///
    /// # Errors
    ///
    /// Propagates spectral-estimation failures (e.g. disconnected blocks).
    pub fn compute(graph: &Graph, partition: &Partition, epoch_constant: f64) -> Result<Self> {
        let t1 = t_van_spectral_block(graph, partition, Block::One)?;
        let t2 = t_van_spectral_block(graph, partition, Block::Two)?;
        Ok(BoundsSummary {
            n: graph.node_count(),
            n1: partition.smaller_block_size(),
            n2: partition.larger_block_size(),
            cut_edges: partition.cut_edge_count(),
            convex_lower_bound: theorem1_lower_bound(partition),
            t_van_block_one: t1,
            t_van_block_two: t2,
            theorem2_upper_bound: theorem2_upper_bound(epoch_constant, t1 + t2, graph.node_count()),
            epoch_constant,
        })
    }

    /// Ratio of the Theorem 1 lower bound to the Theorem 2 upper bound — the
    /// predicted speed-up of Algorithm A over any convex algorithm on this
    /// instance.
    pub fn predicted_speedup(&self) -> f64 {
        if self.theorem2_upper_bound <= 0.0 {
            f64::INFINITY
        } else {
            self.convex_lower_bound / self.theorem2_upper_bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::{bridged_clusters, complete, dumbbell, path};
    use proptest::prelude::*;

    #[test]
    fn theorem1_values() {
        let (_, p) = dumbbell(16).unwrap();
        assert!((theorem1_lower_bound(&p) - 16.0).abs() < 1e-12);
        assert!((theorem1_lower_bound_raw(10, 20, 5) - 2.0).abs() < 1e-12);
        assert!(theorem1_lower_bound_raw(10, 20, 0).is_infinite());
    }

    #[test]
    fn theorem1_scales_inversely_with_cut_size() {
        let a = theorem1_lower_bound_raw(32, 32, 1);
        let b = theorem1_lower_bound_raw(32, 32, 4);
        assert!((a / b - 4.0).abs() < 1e-12);
    }

    #[test]
    fn t_van_spectral_complete_graph_shrinks_with_n() {
        // For K_m, T_van ≈ (2 + ln m)·2/m decreases with m.
        let t8 = t_van_spectral(&complete(8).unwrap()).unwrap();
        let t32 = t_van_spectral(&complete(32).unwrap()).unwrap();
        assert!(t8 > 0.0);
        assert!(t32 < t8);
        // And the closed form matches within a small factor.
        let expected = (2.0 + 8.0f64.ln()) * 2.0 / 8.0;
        assert!((t8 - expected).abs() < 1e-9);
    }

    #[test]
    fn t_van_spectral_path_grows_with_n() {
        let t8 = t_van_spectral(&path(8).unwrap()).unwrap();
        let t32 = t_van_spectral(&path(32).unwrap()).unwrap();
        assert!(t32 > t8);
    }

    #[test]
    fn t_van_block_estimates() {
        let (g, p) = dumbbell(8).unwrap();
        let t1 = t_van_spectral_block(&g, &p, Block::One).unwrap();
        let t2 = t_van_spectral_block(&g, &p, Block::Two).unwrap();
        // Both blocks are K_8, so the estimates agree.
        assert!((t1 - t2).abs() < 1e-9);
        assert!(t1 > 0.0);
        // A single-node block has T_van = 0.
        let (g2, p2) = bridged_clusters(1, 5, 1, 0.9, 3).unwrap();
        assert_eq!(t_van_spectral_block(&g2, &p2, Block::One).unwrap(), 0.0);
        let t_big = t_van_spectral_block(&g2, &p2, Block::Two).unwrap();
        assert!(t_big > 0.0);
    }

    #[test]
    fn t_van_block_rejects_disconnected_block() {
        // Path 0-1-2-3 with blocks {0, 2} / {1, 3}: both blocks disconnected.
        let g = gossip_graph::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let p = Partition::from_block_one(&g, &[gossip_graph::NodeId(0), gossip_graph::NodeId(2)])
            .unwrap();
        assert!(t_van_spectral_block(&g, &p, Block::One).is_err());
    }

    #[test]
    fn epoch_length_is_at_least_one_tick() {
        assert_eq!(epoch_length_ticks(4.0, 0.0001, 16.0), 1);
        assert_eq!(
            epoch_length_ticks(4.0, 1.0, 16.0),
            (4.0f64 * 16.0f64.ln()).ceil() as u64
        );
        assert!(epoch_length_ticks(1.0, 10.0, 1024.0) > 1);
    }

    #[test]
    fn theorem2_upper_bound_monotone_in_inputs() {
        let a = theorem2_upper_bound(4.0, 1.0, 64);
        let b = theorem2_upper_bound(4.0, 2.0, 64);
        let c = theorem2_upper_bound(4.0, 1.0, 4096);
        assert!(b > a);
        assert!(c > a);
    }

    #[test]
    fn bounds_summary_on_dumbbell() {
        let (g, p) = dumbbell(16).unwrap();
        let s = BoundsSummary::compute(&g, &p, 4.0).unwrap();
        assert_eq!(s.n, 32);
        assert_eq!(s.n1, 16);
        assert_eq!(s.n2, 16);
        assert_eq!(s.cut_edges, 1);
        assert!((s.convex_lower_bound - 16.0).abs() < 1e-12);
        assert!(s.t_van_block_one > 0.0);
        assert!(s.theorem2_upper_bound > 0.0);
        // At n = 32 with the conservative C = 4 the predicted speed-up is
        // around one (the crossover point); it grows quickly with n, which
        // the next test checks.
        assert!(s.predicted_speedup() > 0.5);
        let large = BoundsSummary::compute(&dumbbell(64).unwrap().0, &dumbbell(64).unwrap().1, 4.0)
            .unwrap();
        assert!(large.predicted_speedup() > 2.0);
    }

    #[test]
    fn predicted_speedup_grows_with_n_on_dumbbell() {
        let small =
            BoundsSummary::compute(&dumbbell(8).unwrap().0, &dumbbell(8).unwrap().1, 4.0).unwrap();
        let large = BoundsSummary::compute(&dumbbell(64).unwrap().0, &dumbbell(64).unwrap().1, 4.0)
            .unwrap();
        assert!(large.predicted_speedup() > small.predicted_speedup());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_theorem1_matches_partition_ratio(half in 2usize..20) {
            let (_, p) = dumbbell(half).unwrap();
            prop_assert!((theorem1_lower_bound(&p)
                - theorem1_lower_bound_raw(half, half, 1)).abs() < 1e-12);
        }

        #[test]
        fn prop_epoch_length_monotone_in_constant(c in 1.0f64..20.0, t in 0.01f64..5.0) {
            let small = epoch_length_ticks(c, t, 64.0);
            let large = epoch_length_ticks(2.0 * c, t, 64.0);
            prop_assert!(large >= small);
        }
    }
}
