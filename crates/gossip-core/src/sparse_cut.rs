//! **Algorithm A** — the paper's non-convex sparse-cut averaging algorithm.
//!
//! Given a partition `(V₁, V₂)` with cut edges `E₁₂` and a designated cut
//! edge `e_c`, the algorithm behaves as follows at each edge tick:
//!
//! * ticks of edges internal to `V₁` or `V₂` perform the vanilla pairwise
//!   average;
//! * ticks of cut edges other than `e_c` do nothing (the cut is "frozen");
//! * every `⌈C·(T_van(G₁)+T_van(G₂))·ln n⌉`-th tick of `e_c` performs the
//!   **non-convex transfer**
//!   `x_u ← x_u + γ·(x_v − x_u)`, `x_v ← x_v − γ·(x_v − x_u)`,
//!   where `u ∈ V₁`, `v ∈ V₂`; all other ticks of `e_c` do nothing.
//!
//! # The transfer coefficient γ
//!
//! The paper states `γ = n₁`.  A direct calculation (reproduced in this
//! module's tests) shows that with that literal value the post-transfer block
//! means are `µ₁' ≈ µ₂` and `µ₂' ≈ −(n₁/n₂)·µ₂`: the imbalance *contracts by
//! `n₁/n₂`* per transfer — which is no contraction at all in the balanced
//! case `n₁ = n₂` (the block means merely swap sign), and the variance then
//! never falls below `µ²`.  The value that actually cancels the between-block
//! imbalance (and yields the paper's inequality (7),
//! `|µ(T⁺_{k+1})| ≤ n^{3/2}·σ(T⁻_{k+1})`) is
//!
//! `γ* = n₁·n₂ / n`,
//!
//! i.e. the harmonic combination of the block sizes (equal to `n₁/2` when the
//! blocks are balanced, and asymptotically `n₁` when `n₂ ≫ n₁`, so the
//! paper's `Θ(n₁)` scaling is unchanged).  [`TransferCoefficient::ExactBalance`]
//! (the default) uses `γ*`; [`TransferCoefficient::PaperLiteral`] uses the
//! paper's `n₁` so the deviation can be measured (experiment E10 in
//! `EXPERIMENTS.md`).

use crate::{CoreError, Result};
use gossip_graph::partition::Block;
use gossip_graph::{EdgeId, Graph, NodeId, Partition};
use gossip_sim::handler::{EdgeTickContext, EdgeTickHandler};
use gossip_sim::values::NodeValues;
use serde::{Deserialize, Serialize};

/// Choice of the non-convex transfer coefficient `γ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum TransferCoefficient {
    /// `γ = n₁·n₂/n` — cancels the between-block imbalance exactly (up to the
    /// within-block deviations); the default.
    #[default]
    ExactBalance,
    /// `γ = n₁` — the coefficient as literally stated in the paper.
    PaperLiteral,
    /// An arbitrary fixed coefficient (used by ablation experiments).
    Custom(f64),
}

impl TransferCoefficient {
    /// Resolves the coefficient for block sizes `n1`, `n2`.
    pub fn resolve(&self, n1: usize, n2: usize) -> f64 {
        match self {
            TransferCoefficient::ExactBalance => (n1 as f64) * (n2 as f64) / ((n1 + n2) as f64),
            TransferCoefficient::PaperLiteral => n1 as f64,
            TransferCoefficient::Custom(gamma) => *gamma,
        }
    }
}

/// Configuration of [`SparseCutAlgorithm`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseCutConfig {
    /// The paper's universal constant `C` multiplying the epoch length.
    pub epoch_constant: f64,
    /// How the transfer coefficient `γ` is chosen.
    pub transfer_coefficient: TransferCoefficient,
    /// Override for `T_van(G₁) + T_van(G₂)` (absolute time).  When `None`,
    /// the spectral estimate from
    /// [`crate::bounds::t_van_spectral`] is computed for both blocks.
    pub t_van_sum_override: Option<f64>,
    /// Explicit designated cut edge.  When `None`, the first cut edge of the
    /// partition is used (for the paper's dumbbell this is exactly the edge
    /// `(v_{n₁}, v_{n₁+1})`).
    pub designated_edge: Option<EdgeId>,
}

impl Default for SparseCutConfig {
    fn default() -> Self {
        SparseCutConfig {
            epoch_constant: 4.0,
            transfer_coefficient: TransferCoefficient::default(),
            t_van_sum_override: None,
            designated_edge: None,
        }
    }
}

impl SparseCutConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the universal constant `C`.
    pub fn with_epoch_constant(mut self, c: f64) -> Self {
        self.epoch_constant = c;
        self
    }

    /// Sets the transfer-coefficient policy.
    pub fn with_transfer_coefficient(mut self, coefficient: TransferCoefficient) -> Self {
        self.transfer_coefficient = coefficient;
        self
    }

    /// Supplies `T_van(G₁) + T_van(G₂)` directly instead of estimating it
    /// spectrally.
    pub fn with_t_van_sum(mut self, t_van_sum: f64) -> Self {
        self.t_van_sum_override = Some(t_van_sum);
        self
    }

    /// Designates a specific cut edge as `e_c`.
    pub fn with_designated_edge(mut self, edge: EdgeId) -> Self {
        self.designated_edge = Some(edge);
        self
    }
}

/// The paper's Algorithm A as an [`EdgeTickHandler`].
#[derive(Debug, Clone)]
pub struct SparseCutAlgorithm {
    /// Block membership of every node (`true` = block one).
    in_block_one: Vec<bool>,
    /// Cut edges that are frozen (every cut edge except `e_c`).
    frozen: Vec<bool>,
    designated_edge: EdgeId,
    /// Endpoint of `e_c` inside `V₁`.
    endpoint_one: NodeId,
    /// Endpoint of `e_c` inside `V₂`.
    endpoint_two: NodeId,
    /// Non-convex update fires on every `epoch_ticks`-th tick of `e_c`.
    epoch_ticks: u64,
    /// Transfer coefficient `γ`.
    gamma: f64,
    /// Number of transfers performed so far.
    transfers: u64,
}

impl SparseCutAlgorithm {
    /// Builds Algorithm A for `graph` with the given two-block `partition`.
    ///
    /// The designated edge defaults to the partition's first cut edge; the
    /// epoch length is `⌈C·(T_van(G₁)+T_van(G₂))·ln n⌉` ticks of `e_c`, where
    /// the `T_van` values come from the spectral estimate unless overridden.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCut`] if the partition has no cut edges or
    /// the designated edge does not cross the cut, and
    /// [`CoreError::InvalidConfig`] for a non-positive epoch constant or
    /// non-finite transfer coefficient.  Spectral estimation failures (e.g. a
    /// disconnected block) surface as [`CoreError::Graph`].
    pub fn from_partition(
        graph: &Graph,
        partition: &Partition,
        config: SparseCutConfig,
    ) -> Result<Self> {
        if config.epoch_constant <= 0.0 || !config.epoch_constant.is_finite() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "epoch constant must be positive and finite, got {}",
                    config.epoch_constant
                ),
            });
        }
        if partition.cut_edge_count() == 0 {
            return Err(CoreError::InvalidCut {
                reason: "partition has no cut edges".into(),
            });
        }
        if partition.node_count() != graph.node_count() {
            return Err(CoreError::InvalidCut {
                reason: format!(
                    "partition describes {} nodes but the graph has {}",
                    partition.node_count(),
                    graph.node_count()
                ),
            });
        }

        let designated_edge = config
            .designated_edge
            .unwrap_or_else(|| partition.cut_edges()[0]);
        let edge = graph.edge(designated_edge)?;
        if !partition.is_cut_edge(&edge) {
            return Err(CoreError::InvalidCut {
                reason: format!("designated edge {designated_edge} does not cross the cut"),
            });
        }
        let (endpoint_one, endpoint_two) = if partition.block_of(edge.u()) == Block::One {
            (edge.u(), edge.v())
        } else {
            (edge.v(), edge.u())
        };

        let in_block_one: Vec<bool> = graph
            .nodes()
            .map(|v| partition.block_of(v) == Block::One)
            .collect();
        let mut frozen = vec![false; graph.edge_count()];
        for &cut_edge in partition.cut_edges() {
            frozen[cut_edge.index()] = cut_edge != designated_edge;
        }

        let t_van_sum = match config.t_van_sum_override {
            Some(t) => {
                if t <= 0.0 || !t.is_finite() {
                    return Err(CoreError::InvalidConfig {
                        reason: format!("T_van sum override must be positive and finite, got {t}"),
                    });
                }
                t
            }
            None => {
                let t1 = crate::bounds::t_van_spectral_block(graph, partition, Block::One)?;
                let t2 = crate::bounds::t_van_spectral_block(graph, partition, Block::Two)?;
                t1 + t2
            }
        };
        let n = graph.node_count() as f64;
        let epoch_ticks = crate::bounds::epoch_length_ticks(config.epoch_constant, t_van_sum, n);

        let n1 = partition.block_one_size();
        let n2 = partition.block_two_size();
        let gamma = config.transfer_coefficient.resolve(n1, n2);
        if !gamma.is_finite() {
            return Err(CoreError::InvalidConfig {
                reason: format!("transfer coefficient resolved to a non-finite value {gamma}"),
            });
        }

        Ok(SparseCutAlgorithm {
            in_block_one,
            frozen,
            designated_edge,
            endpoint_one,
            endpoint_two,
            epoch_ticks,
            gamma,
            transfers: 0,
        })
    }

    /// The designated cut edge `e_c`.
    pub fn designated_edge(&self) -> EdgeId {
        self.designated_edge
    }

    /// The epoch length: the non-convex transfer fires on every
    /// `epoch_ticks()`-th tick of `e_c`.
    pub fn epoch_ticks(&self) -> u64 {
        self.epoch_ticks
    }

    /// The transfer coefficient `γ` in use.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of non-convex transfers performed so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    fn is_internal(&self, u: NodeId, v: NodeId) -> bool {
        self.in_block_one[u.index()] == self.in_block_one[v.index()]
    }
}

impl EdgeTickHandler for SparseCutAlgorithm {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        let (u, v) = ctx.edge.endpoints();
        if ctx.edge_id == self.designated_edge {
            // Fire on every `epoch_ticks`-th tick of e_c (the paper's
            // "k ≡ −1 (mod m)" schedule up to a fixed offset of one tick).
            if ctx.edge_tick_count.is_multiple_of(self.epoch_ticks) {
                values.transfer_pair_update(self.endpoint_one, self.endpoint_two, self.gamma);
                self.transfers += 1;
            }
        } else if self.frozen[ctx.edge_id.index()] {
            // Frozen cut edge: no update.
        } else if self.is_internal(u, v) {
            values.average_pair(u, v);
        } else {
            // A cut edge that is neither e_c nor marked frozen cannot occur:
            // every cut edge other than e_c is frozen at construction time.
            debug_assert!(false, "unexpected unfrozen cut edge {}", ctx.edge_id);
        }
    }

    fn name(&self) -> &str {
        "algorithm-a"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::{barbell, bridged_clusters, dumbbell};
    use gossip_sim::engine::{AsyncSimulator, SimulationConfig};
    use gossip_sim::stopping::StoppingRule;

    fn adversarial(partition: &Partition) -> NodeValues {
        // +1 on V1 and −n1/n2 on V2 (the Section 2 initial condition), which
        // has mean zero.
        let n1 = partition.block_one_size() as f64;
        let n2 = partition.block_two_size() as f64;
        let mut v = vec![0.0; partition.node_count()];
        for &node in partition.block_one() {
            v[node.index()] = 1.0;
        }
        for &node in partition.block_two() {
            v[node.index()] = -n1 / n2;
        }
        NodeValues::from_values(v).unwrap()
    }

    #[test]
    fn transfer_coefficient_resolution() {
        assert!((TransferCoefficient::ExactBalance.resolve(8, 8) - 4.0).abs() < 1e-12);
        assert!((TransferCoefficient::ExactBalance.resolve(2, 6) - 1.5).abs() < 1e-12);
        assert!((TransferCoefficient::PaperLiteral.resolve(8, 8) - 8.0).abs() < 1e-12);
        assert!((TransferCoefficient::Custom(2.5).resolve(8, 8) - 2.5).abs() < 1e-12);
        assert_eq!(
            TransferCoefficient::default(),
            TransferCoefficient::ExactBalance
        );
    }

    #[test]
    fn config_builder() {
        let c = SparseCutConfig::new()
            .with_epoch_constant(8.0)
            .with_transfer_coefficient(TransferCoefficient::PaperLiteral)
            .with_t_van_sum(2.0)
            .with_designated_edge(EdgeId(5));
        assert!((c.epoch_constant - 8.0).abs() < 1e-12);
        assert_eq!(c.transfer_coefficient, TransferCoefficient::PaperLiteral);
        assert_eq!(c.t_van_sum_override, Some(2.0));
        assert_eq!(c.designated_edge, Some(EdgeId(5)));
    }

    #[test]
    fn construction_validates_input() {
        let (g, p) = dumbbell(4).unwrap();
        assert!(SparseCutAlgorithm::from_partition(
            &g,
            &p,
            SparseCutConfig::new().with_epoch_constant(0.0)
        )
        .is_err());
        assert!(SparseCutAlgorithm::from_partition(
            &g,
            &p,
            SparseCutConfig::new().with_t_van_sum(-1.0)
        )
        .is_err());
        // Designated edge that does not cross the cut.
        let internal_edge = g
            .find_edge(gossip_graph::NodeId(0), gossip_graph::NodeId(1))
            .unwrap();
        assert!(matches!(
            SparseCutAlgorithm::from_partition(
                &g,
                &p,
                SparseCutConfig::new().with_designated_edge(internal_edge)
            ),
            Err(CoreError::InvalidCut { .. })
        ));
        // Partition of a different graph.
        let (_, other_partition) = dumbbell(5).unwrap();
        assert!(
            SparseCutAlgorithm::from_partition(&g, &other_partition, SparseCutConfig::new())
                .is_err()
        );
    }

    #[test]
    fn default_designated_edge_is_the_bridge() {
        let (g, p) = dumbbell(6).unwrap();
        let algo = SparseCutAlgorithm::from_partition(&g, &p, SparseCutConfig::default()).unwrap();
        let bridge = g.edge(algo.designated_edge()).unwrap();
        assert_eq!(
            bridge.endpoints(),
            (gossip_graph::NodeId(5), gossip_graph::NodeId(6))
        );
        assert!(algo.epoch_ticks() >= 1);
        // Balanced dumbbell: gamma* = n1/2 = 3.
        assert!((algo.gamma() - 3.0).abs() < 1e-12);
        assert_eq!(algo.name(), "algorithm-a");
        assert_eq!(algo.transfers(), 0);
    }

    #[test]
    fn internal_edges_average_cut_edges_frozen() {
        let (g, p) = bridged_clusters(4, 4, 2, 0.9, 3).unwrap();
        let mut algo =
            SparseCutAlgorithm::from_partition(&g, &p, SparseCutConfig::default()).unwrap();
        let mut values = adversarial(&p);

        // A frozen cut edge (the one that is not designated) does nothing.
        let frozen_edge = p
            .cut_edges()
            .iter()
            .copied()
            .find(|&e| e != algo.designated_edge())
            .expect("two cut edges exist");
        let before = values.clone();
        let ctx = EdgeTickContext {
            graph: &g,
            edge: g.edge(frozen_edge).unwrap(),
            edge_id: frozen_edge,
            time: 0.1,
            edge_tick_count: 1,
            global_tick_count: 1,
        };
        algo.on_edge_tick(&mut values, &ctx);
        assert_eq!(values, before);

        // An internal edge performs the vanilla average.
        let internal = g
            .edge_ids()
            .find(|&e| {
                let edge = g.edge(e).unwrap();
                !p.is_cut_edge(&edge)
            })
            .unwrap();
        let edge = g.edge(internal).unwrap();
        let ctx = EdgeTickContext {
            graph: &g,
            edge,
            edge_id: internal,
            time: 0.2,
            edge_tick_count: 1,
            global_tick_count: 2,
        };
        algo.on_edge_tick(&mut values, &ctx);
        let (u, v) = edge.endpoints();
        assert!((values.get(u) - values.get(v)).abs() < 1e-12);
    }

    #[test]
    fn transfer_fires_only_on_epoch_boundary_and_conserves_mass() {
        let (g, p) = dumbbell(4).unwrap();
        let config = SparseCutConfig::new()
            .with_t_van_sum(3.0)
            .with_epoch_constant(1.0);
        let mut algo = SparseCutAlgorithm::from_partition(&g, &p, config).unwrap();
        let m = algo.epoch_ticks();
        assert!(m >= 1);
        let mut values = adversarial(&p);
        let sum = values.sum();
        let ec = algo.designated_edge();
        let edge = g.edge(ec).unwrap();
        for k in 1..=(2 * m) {
            let before = values.clone();
            let ctx = EdgeTickContext {
                graph: &g,
                edge,
                edge_id: ec,
                time: k as f64,
                edge_tick_count: k,
                global_tick_count: k,
            };
            algo.on_edge_tick(&mut values, &ctx);
            if k % m == 0 {
                assert_ne!(values, before, "transfer expected at tick {k}");
            } else {
                assert_eq!(values, before, "no update expected at tick {k}");
            }
        }
        assert_eq!(algo.transfers(), 2);
        assert!((values.sum() - sum).abs() < 1e-9);
    }

    #[test]
    fn exact_balance_transfer_cancels_block_imbalance_when_blocks_are_mixed() {
        // When each block is internally uniform (sigma = 0), a single
        // exact-balance transfer zeroes both block means.
        let (g, p) = dumbbell(8).unwrap();
        let mut algo = SparseCutAlgorithm::from_partition(
            &g,
            &p,
            SparseCutConfig::new()
                .with_t_van_sum(1.0)
                .with_epoch_constant(1e-9),
        )
        .unwrap();
        assert_eq!(algo.epoch_ticks(), 1);
        let mut values = adversarial(&p);
        let ec = algo.designated_edge();
        let ctx = EdgeTickContext {
            graph: &g,
            edge: g.edge(ec).unwrap(),
            edge_id: ec,
            time: 1.0,
            edge_tick_count: 1,
            global_tick_count: 1,
        };
        algo.on_edge_tick(&mut values, &ctx);
        // Block sums are now zero: all the imbalance sits on the two endpoint
        // nodes, which subsequent internal averaging spreads out.
        let sum_one: f64 = p.block_one().iter().map(|&v| values.get(v)).sum();
        let sum_two: f64 = p.block_two().iter().map(|&v| values.get(v)).sum();
        assert!(sum_one.abs() < 1e-9);
        assert!(sum_two.abs() < 1e-9);
    }

    #[test]
    fn paper_literal_transfer_swaps_block_means_on_balanced_dumbbell() {
        // The deviation documented in the module docs: with gamma = n1 and
        // n1 = n2, the block means swap instead of cancelling.
        let (g, p) = dumbbell(8).unwrap();
        let mut algo = SparseCutAlgorithm::from_partition(
            &g,
            &p,
            SparseCutConfig::new()
                .with_t_van_sum(1.0)
                .with_epoch_constant(1e-9)
                .with_transfer_coefficient(TransferCoefficient::PaperLiteral),
        )
        .unwrap();
        let mut values = adversarial(&p);
        let ec = algo.designated_edge();
        let ctx = EdgeTickContext {
            graph: &g,
            edge: g.edge(ec).unwrap(),
            edge_id: ec,
            time: 1.0,
            edge_tick_count: 1,
            global_tick_count: 1,
        };
        algo.on_edge_tick(&mut values, &ctx);
        let mean_one = values.block_mean(&p, Block::One);
        let mean_two = values.block_mean(&p, Block::Two);
        // Before: (+1, −1).  After the literal-n1 transfer: (−1, +1).
        assert!((mean_one + 1.0).abs() < 1e-9);
        assert!((mean_two - 1.0).abs() < 1e-9);
    }

    #[test]
    fn algorithm_a_converges_fast_on_dumbbell() {
        let (g, p) = dumbbell(8).unwrap();
        let algo = SparseCutAlgorithm::from_partition(&g, &p, SparseCutConfig::default()).unwrap();
        let config = SimulationConfig::new(17)
            .with_stopping_rule(StoppingRule::definition1().or_max_time(5_000.0));
        let mut sim = AsyncSimulator::new(&g, adversarial(&p), algo, config).unwrap();
        let outcome = sim.run().unwrap();
        assert!(outcome.converged(), "Algorithm A should converge quickly");
        // Mass conservation throughout.
        assert!(outcome.final_values.mean().abs() < 1e-9);
        // It should beat the convex lower bound scale (n1/|E12| = 8) by a
        // comfortable margin on this instance; allow slack for randomness.
        assert!(outcome.elapsed_time < 100.0);
    }

    #[test]
    fn algorithm_a_converges_on_asymmetric_barbell() {
        let (g, p) = barbell(4, 12).unwrap();
        let algo = SparseCutAlgorithm::from_partition(&g, &p, SparseCutConfig::default()).unwrap();
        let config = SimulationConfig::new(23)
            .with_stopping_rule(StoppingRule::definition1().or_max_time(5_000.0));
        let mut sim = AsyncSimulator::new(&g, adversarial(&p), algo, config).unwrap();
        let outcome = sim.run().unwrap();
        assert!(outcome.converged());
        assert!(outcome.final_values.mean().abs() < 1e-9);
    }
}
