//! Synchronous first- and second-order diffusive load balancing
//! (Muthukrishnan, Ghosh and Schultz), the non-convex prior work cited by the
//! paper's introduction.
//!
//! * **First-order diffusion (FOS)**: `x^{t+1} = x^t − δ·L·x^t = M·x^t` with
//!   `M = I − δL`.  For `δ < 1/d_max` the scheme is a convex combination of
//!   neighbour values and converges at rate `ρ = max(|λ₂(M)|, |λ_n(M)|)`.
//! * **Second-order diffusion (SOS)**: `x^{t+1} = β·M·x^t + (1−β)·x^{t−1}`
//!   with `β ∈ [1, 2)`.  This uses the values of the *previous two* rounds —
//!   the non-convex "memory" idea the paper points to — and with the optimal
//!   `β* = 2 / (1 + √(1 − ρ²))` converges roughly quadratically faster than
//!   FOS on poorly connected graphs.
//!
//! Both conserve the sum exactly (their iteration matrices fix the all-ones
//! vector and are symmetric), so the asynchronous experiments can compare
//! them with gossip algorithms on equal footing; a synchronous round is
//! charged `|E|` edge activations, i.e. one unit of the asynchronous model's
//! absolute time (see `gossip-sim::sync`).

use crate::{CoreError, Result};
use gossip_graph::Graph;
use gossip_linalg::Vector;
use gossip_sim::sync::RoundHandler;
use gossip_sim::values::NodeValues;

fn default_step(graph: &Graph) -> f64 {
    // δ = 1/(d_max + 1) is always stable and keeps M's entries non-negative.
    1.0 / (graph.max_degree() as f64 + 1.0)
}

fn diffusion_round(values: &NodeValues, graph: &Graph, step: f64) -> Vector {
    let current = values.as_vector();
    let mut next = current.clone();
    for v in graph.nodes() {
        let mut flux = 0.0;
        for (u, _) in graph.neighbors(v) {
            flux += current[u.index()] - current[v.index()];
        }
        next[v.index()] += step * flux;
    }
    next
}

/// First-order synchronous diffusion `x ← (I − δL)·x`.
#[derive(Debug, Clone)]
pub struct FirstOrderDiffusion {
    step: Option<f64>,
}

impl FirstOrderDiffusion {
    /// Uses the automatic stable step `δ = 1/(d_max + 1)`.
    pub fn new() -> Self {
        FirstOrderDiffusion { step: None }
    }

    /// Uses an explicit step size.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the step is not positive and
    /// finite.
    pub fn with_step(step: f64) -> Result<Self> {
        if step <= 0.0 || !step.is_finite() {
            return Err(CoreError::InvalidConfig {
                reason: format!("diffusion step must be positive and finite, got {step}"),
            });
        }
        Ok(FirstOrderDiffusion { step: Some(step) })
    }
}

impl Default for FirstOrderDiffusion {
    fn default() -> Self {
        Self::new()
    }
}

impl RoundHandler for FirstOrderDiffusion {
    fn on_round(&mut self, values: &mut NodeValues, _round: u64, graph: &Graph) {
        let step = self.step.unwrap_or_else(|| default_step(graph));
        let next = diffusion_round(values, graph, step);
        *values = NodeValues::from_vector(next).expect("diffusion of finite values is finite");
    }

    fn name(&self) -> &str {
        "first-order-diffusion"
    }
}

/// Second-order synchronous diffusion with memory of the previous round.
#[derive(Debug, Clone)]
pub struct SecondOrderDiffusion {
    beta: f64,
    step: Option<f64>,
    previous: Option<Vector>,
}

impl SecondOrderDiffusion {
    /// Creates the scheme with mixing parameter `beta ∈ [1, 2)` and the
    /// automatic stable diffusion step.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `beta ∉ [1, 2)`.
    pub fn new(beta: f64) -> Result<Self> {
        if !(1.0..2.0).contains(&beta) {
            return Err(CoreError::InvalidConfig {
                reason: format!("second-order beta must lie in [1, 2), got {beta}"),
            });
        }
        Ok(SecondOrderDiffusion {
            beta,
            step: None,
            previous: None,
        })
    }

    /// Sets an explicit diffusion step size.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the step is not positive and
    /// finite.
    pub fn with_step(mut self, step: f64) -> Result<Self> {
        if step <= 0.0 || !step.is_finite() {
            return Err(CoreError::InvalidConfig {
                reason: format!("diffusion step must be positive and finite, got {step}"),
            });
        }
        self.step = Some(step);
        Ok(self)
    }

    /// The optimal `β* = 2/(1 + √(1 − ρ²))` for a first-order convergence
    /// factor `ρ ∈ [0, 1)`; clamped into `[1, 2)`.
    pub fn optimal_beta(rho: f64) -> f64 {
        let rho = rho.clamp(0.0, 1.0 - 1e-12);
        (2.0 / (1.0 + (1.0 - rho * rho).sqrt())).clamp(1.0, 2.0 - 1e-12)
    }

    /// The mixing parameter in use.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl RoundHandler for SecondOrderDiffusion {
    fn on_round(&mut self, values: &mut NodeValues, _round: u64, graph: &Graph) {
        let step = self.step.unwrap_or_else(|| default_step(graph));
        let current = values.as_vector().clone();
        let diffused = diffusion_round(values, graph, step);
        let next = match &self.previous {
            // First round: plain first-order step (the standard SOS start-up).
            None => diffused,
            Some(previous) => {
                let mut combined = diffused.scaled(self.beta);
                combined
                    .axpy(1.0 - self.beta, previous)
                    .expect("dimensions agree by construction");
                combined
            }
        };
        self.previous = Some(current);
        *values = NodeValues::from_vector(next).expect("diffusion of finite values is finite");
    }

    fn name(&self) -> &str {
        "second-order-diffusion"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::{dumbbell, path};
    use gossip_sim::stopping::StoppingRule;
    use gossip_sim::sync::{SyncConfig, SyncSimulator};

    fn spike(n: usize) -> NodeValues {
        let mut v = vec![0.0; n];
        v[0] = n as f64;
        NodeValues::from_values(v).unwrap()
    }

    #[test]
    fn constructors_validate() {
        assert!(FirstOrderDiffusion::with_step(0.0).is_err());
        assert!(FirstOrderDiffusion::with_step(f64::NAN).is_err());
        assert!(FirstOrderDiffusion::with_step(0.2).is_ok());
        assert!(SecondOrderDiffusion::new(0.9).is_err());
        assert!(SecondOrderDiffusion::new(2.0).is_err());
        assert!(SecondOrderDiffusion::new(1.5).is_ok());
        assert!(SecondOrderDiffusion::new(1.5)
            .unwrap()
            .with_step(-1.0)
            .is_err());
        assert_eq!(
            FirstOrderDiffusion::default().name(),
            "first-order-diffusion"
        );
        assert_eq!(
            SecondOrderDiffusion::new(1.2).unwrap().name(),
            "second-order-diffusion"
        );
    }

    #[test]
    fn optimal_beta_properties() {
        // rho = 0: beta* = 1 (no memory needed).
        assert!((SecondOrderDiffusion::optimal_beta(0.0) - 1.0).abs() < 1e-12);
        // Monotone increasing in rho, bounded below 2.
        let b1 = SecondOrderDiffusion::optimal_beta(0.9);
        let b2 = SecondOrderDiffusion::optimal_beta(0.99);
        assert!(b1 < b2);
        assert!(b2 < 2.0);
        assert!(SecondOrderDiffusion::optimal_beta(1.5) < 2.0);
    }

    #[test]
    fn first_order_conserves_sum_and_converges() {
        let g = path(8).unwrap();
        let initial = spike(8);
        let sum = initial.sum();
        let config = SyncConfig::new()
            .with_stopping_rule(StoppingRule::variance_ratio_below(1e-6).or_max_ticks(100_000));
        let mut sim = SyncSimulator::new(&g, initial, FirstOrderDiffusion::new(), config).unwrap();
        let outcome = sim.run().unwrap();
        assert!(outcome.converged());
        assert!((outcome.final_values.sum() - sum).abs() < 1e-8);
    }

    #[test]
    fn second_order_conserves_sum_and_converges_faster_on_path() {
        let g = path(24).unwrap();
        let rounds_of = |handler: Box<dyn RoundHandler>| {
            let config = SyncConfig::new().with_stopping_rule(
                StoppingRule::variance_ratio_below(1e-4).or_max_ticks(2_000_000),
            );
            let mut sim = SyncSimulator::new(&g, spike(24), handler, config).unwrap();
            let outcome = sim.run().unwrap();
            assert!(outcome.converged());
            assert!((outcome.final_values.sum() - 24.0).abs() < 1e-6);
            outcome.rounds
        };
        let fos = rounds_of(Box::<FirstOrderDiffusion>::default());
        // On a long path the first-order factor rho is close to 1; use a
        // strong beta.
        let sos = rounds_of(Box::new(SecondOrderDiffusion::new(1.8).unwrap()));
        assert!(
            sos < fos,
            "second-order ({sos} rounds) should beat first-order ({fos} rounds)"
        );
    }

    #[test]
    fn diffusion_is_still_cut_limited_on_dumbbell() {
        // Even the accelerated scheme must push mass through the single
        // bridge, so the round count grows with the clique size.
        let rounds_for = |half: usize| {
            let (g, _) = dumbbell(half).unwrap();
            let config = SyncConfig::new()
                .with_stopping_rule(StoppingRule::definition1().or_max_ticks(2_000_000));
            let initial = {
                let mut v = vec![1.0; half];
                v.extend(std::iter::repeat_n(-1.0, half));
                NodeValues::from_values(v).unwrap()
            };
            let mut sim =
                SyncSimulator::new(&g, initial, SecondOrderDiffusion::new(1.6).unwrap(), config)
                    .unwrap();
            sim.run().unwrap().rounds
        };
        let small = rounds_for(8);
        let large = rounds_for(24);
        assert!(
            large > small,
            "dumbbell rounds should grow with size: {small} vs {large}"
        );
    }

    #[test]
    fn explicit_step_is_used() {
        let g = path(4).unwrap();
        let mut values = NodeValues::from_values(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let mut fos = FirstOrderDiffusion::with_step(0.25).unwrap();
        fos.on_round(&mut values, 1, &g);
        // Node 0 sends 0.25 of the difference to node 1.
        assert!((values.get(gossip_graph::NodeId(0)) - 0.75).abs() < 1e-12);
        assert!((values.get(gossip_graph::NodeId(1)) - 0.25).abs() < 1e-12);
    }
}
