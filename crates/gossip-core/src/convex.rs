//! The class `C` of convex pairwise updates (Definition 2 of the paper).
//!
//! Every algorithm here updates the two endpoints of the ticking edge by a
//! convex combination `x_i ← αx_i + (1−α)x_j`, `x_j ← αx_j + (1−α)x_i` with
//! `α ∈ [0,1]`.  Such updates keep every value inside
//! `[min_i x_i(0), max_i x_i(0)]` and never increase the variance — which is
//! precisely why Theorem 1 applies to all of them: on a graph with a sparse
//! cut, mass can only leak across the cut at rate `O(|E₁₂|/min(n₁,n₂))` per
//! unit time, so averaging needs `Ω(min(n₁,n₂)/|E₁₂|)` time.

use gossip_sim::handler::{EdgeTickContext, EdgeTickHandler, PairwiseKernel};
use gossip_sim::values::NodeValues;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// The "vanilla" algorithm: replace both endpoint values by their arithmetic
/// mean (`α = ½`).
///
/// This is the algorithm whose per-block averaging times `T_van(G₁)`,
/// `T_van(G₂)` parametrize Algorithm A.
#[derive(Debug, Clone, Copy, Default)]
pub struct VanillaGossip;

impl VanillaGossip {
    /// Creates the vanilla algorithm.
    pub fn new() -> Self {
        VanillaGossip
    }
}

impl EdgeTickHandler for VanillaGossip {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        let (u, v) = ctx.edge.endpoints();
        values.average_pair(u, v);
    }

    fn name(&self) -> &str {
        "vanilla"
    }

    // Same arithmetic as `NodeValues::average_pair`, so the sharded engine's
    // kernel path is bit-identical to the per-tick path.
    fn pairwise_kernel(&self) -> Option<PairwiseKernel> {
        Some(|xu, xv| {
            let avg = 0.5 * (xu + xv);
            (avg, avg)
        })
    }
}

/// A convex pairwise update with a fixed mixing parameter `α`.
///
/// `α = ½` recovers [`VanillaGossip`]; `α` close to 1 mixes slowly; `α = 1`
/// never changes anything.  All values of `α ∈ [0, 1]` are members of the
/// paper's class `C` and therefore subject to the Theorem 1 lower bound.
#[derive(Debug, Clone, Copy)]
pub struct WeightedConvexGossip {
    alpha: f64,
}

impl WeightedConvexGossip {
    /// Creates a convex gossip rule with mixing parameter `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] if `alpha ∉ [0, 1]`.
    pub fn new(alpha: f64) -> crate::Result<Self> {
        if !(0.0..=1.0).contains(&alpha) || !alpha.is_finite() {
            return Err(crate::CoreError::InvalidConfig {
                reason: format!("convex mixing parameter must lie in [0, 1], got {alpha}"),
            });
        }
        Ok(WeightedConvexGossip { alpha })
    }

    /// The mixing parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl EdgeTickHandler for WeightedConvexGossip {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        let (u, v) = ctx.edge.endpoints();
        values.convex_pair_update(u, v, self.alpha);
    }

    fn name(&self) -> &str {
        "weighted-convex"
    }
}

/// Natural random-walk gossip in the style of Boyd, Ghosh, Prabhakar and
/// Shah, expressed in the edge-clock model.
///
/// In the node-clock formulation, when node `i`'s clock ticks it contacts a
/// uniformly random neighbour `j` and both replace their values by the
/// average.  To express this in the paper's edge-clock model (footnote 1 of
/// the paper notes the two models simulate each other), this handler treats
/// every edge tick as a node activation: one endpoint of the ticking edge is
/// chosen uniformly at random as the "caller", which then contacts a
/// uniformly random neighbour (not necessarily the other endpoint of the
/// ticking edge) and averages with it.  The resulting update is still a
/// convex pairwise average, so the algorithm belongs to class `C`.
#[derive(Debug, Clone)]
pub struct RandomNeighborGossip {
    rng: ChaCha8Rng,
}

impl RandomNeighborGossip {
    /// Creates the rule with its own deterministic random stream.
    pub fn new(seed: u64) -> Self {
        RandomNeighborGossip {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl EdgeTickHandler for RandomNeighborGossip {
    fn on_edge_tick(&mut self, values: &mut NodeValues, ctx: &EdgeTickContext<'_>) {
        let (u, v) = ctx.edge.endpoints();
        let caller = if self.rng.gen::<bool>() { u } else { v };
        let degree = ctx.graph.degree(caller);
        if degree == 0 {
            return;
        }
        let pick = self.rng.gen_range(0..degree);
        let (callee, _) = ctx
            .graph
            .neighbors(caller)
            .nth(pick)
            .expect("degree counted above");
        values.average_pair(caller, callee);
    }

    fn name(&self) -> &str {
        "random-neighbor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators::{complete, dumbbell, path};
    use gossip_graph::{EdgeId, NodeId};
    use gossip_sim::engine::{AsyncSimulator, SimulationConfig};
    use gossip_sim::stopping::StoppingRule;
    use proptest::prelude::*;

    fn ctx_for<'a>(graph: &'a gossip_graph::Graph, edge: EdgeId) -> EdgeTickContext<'a> {
        EdgeTickContext {
            graph,
            edge: graph.edge(edge).unwrap(),
            edge_id: edge,
            time: 1.0,
            edge_tick_count: 1,
            global_tick_count: 1,
        }
    }

    #[test]
    fn vanilla_averages_endpoints() {
        let g = path(3).unwrap();
        let mut v = NodeValues::from_values(vec![2.0, 0.0, 8.0]).unwrap();
        let mut algo = VanillaGossip::new();
        algo.on_edge_tick(&mut v, &ctx_for(&g, EdgeId(0)));
        assert_eq!(v.as_slice(), &[1.0, 1.0, 8.0]);
        assert_eq!(algo.name(), "vanilla");
    }

    #[test]
    fn vanilla_kernel_matches_average_pair_bitwise() {
        let g = path(2).unwrap();
        let kernel = VanillaGossip::new().pairwise_kernel().expect("has kernel");
        // Include pairs whose average is not exactly representable, so any
        // arithmetic mismatch between the kernel and average_pair shows up.
        for (a, b) in [
            (2.0, 0.0),
            (0.1, 0.2),
            (1.0e-300, 3.0e17),
            (-7.3, 11.9),
            (f64::MIN_POSITIVE, 1.0),
        ] {
            let mut v = NodeValues::from_values(vec![a, b]).unwrap();
            let mut algo = VanillaGossip::new();
            algo.on_edge_tick(&mut v, &ctx_for(&g, EdgeId(0)));
            let (ku, kv) = kernel(a, b);
            assert_eq!(v.get(NodeId(0)).to_bits(), ku.to_bits());
            assert_eq!(v.get(NodeId(1)).to_bits(), kv.to_bits());
        }
    }

    #[test]
    fn weighted_convex_validates_alpha() {
        assert!(WeightedConvexGossip::new(-0.1).is_err());
        assert!(WeightedConvexGossip::new(1.1).is_err());
        assert!(WeightedConvexGossip::new(f64::NAN).is_err());
        let w = WeightedConvexGossip::new(0.75).unwrap();
        assert!((w.alpha() - 0.75).abs() < 1e-15);
        assert_eq!(w.name(), "weighted-convex");
    }

    #[test]
    fn weighted_convex_applies_update() {
        let g = path(2).unwrap();
        let mut v = NodeValues::from_values(vec![1.0, -1.0]).unwrap();
        let mut algo = WeightedConvexGossip::new(0.75).unwrap();
        algo.on_edge_tick(&mut v, &ctx_for(&g, EdgeId(0)));
        assert!((v.get(NodeId(0)) - 0.5).abs() < 1e-12);
        assert!((v.get(NodeId(1)) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_neighbor_conserves_mass_and_is_reproducible() {
        let g = complete(6).unwrap();
        let mut v1 = NodeValues::from_values(vec![6.0, 0.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let mut v2 = v1.clone();
        let mut a = RandomNeighborGossip::new(9);
        let mut b = RandomNeighborGossip::new(9);
        for tick in 0..50u64 {
            let edge = EdgeId((tick as usize) % g.edge_count());
            let mut ctx = ctx_for(&g, edge);
            ctx.global_tick_count = tick + 1;
            a.on_edge_tick(&mut v1, &ctx);
            b.on_edge_tick(&mut v2, &ctx);
        }
        assert_eq!(v1, v2);
        assert!((v1.sum() - 6.0).abs() < 1e-9);
        assert_eq!(RandomNeighborGossip::new(1).name(), "random-neighbor");
    }

    #[test]
    fn all_convex_rules_converge_on_complete_graph() {
        let g = complete(8).unwrap();
        let initial: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let rule = StoppingRule::variance_ratio_below(1e-4).or_max_ticks(2_000_000);
        let run = |handler: Box<dyn EdgeTickHandler>| {
            let config = SimulationConfig::new(5).with_stopping_rule(rule.clone());
            let mut sim = AsyncSimulator::new(
                &g,
                NodeValues::from_values(initial.clone()).unwrap(),
                handler,
                config,
            )
            .unwrap();
            sim.run().unwrap()
        };
        for handler in [
            Box::new(VanillaGossip::new()) as Box<dyn EdgeTickHandler>,
            Box::new(WeightedConvexGossip::new(0.7).unwrap()),
            Box::new(RandomNeighborGossip::new(3)),
        ] {
            let outcome = run(handler);
            assert!(outcome.converged());
            assert!((outcome.final_values.mean() - 3.5).abs() < 1e-9);
        }
    }

    #[test]
    fn convex_rules_keep_values_in_initial_range() {
        // The range-preservation property used in Section 2 of the paper.
        let (g, _) = dumbbell(4).unwrap();
        let initial =
            NodeValues::from_values(vec![1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, -1.0]).unwrap();
        let config = SimulationConfig::new(8).with_stopping_rule(StoppingRule::max_ticks(20_000));
        let mut sim = AsyncSimulator::new(&g, initial, VanillaGossip::new(), config).unwrap();
        let outcome = sim.run().unwrap();
        assert!(outcome.final_values.min().unwrap() >= -1.0 - 1e-12);
        assert!(outcome.final_values.max().unwrap() <= 1.0 + 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_convex_updates_never_increase_variance(
            alpha in 0.0f64..1.0,
            seed in 0u64..100,
        ) {
            let g = complete(5).unwrap();
            let mut values = NodeValues::from_values(
                (0..5).map(|i| ((i * 7 + seed as usize) % 11) as f64).collect(),
            )
            .unwrap();
            let mut algo = WeightedConvexGossip::new(alpha).unwrap();
            let mut last_var = values.variance();
            for t in 0..100u64 {
                let edge = EdgeId(((t + seed) as usize) % g.edge_count());
                let mut ctx = ctx_for(&g, edge);
                ctx.global_tick_count = t + 1;
                algo.on_edge_tick(&mut values, &ctx);
                let var = values.variance();
                prop_assert!(var <= last_var + 1e-9);
                last_var = var;
            }
        }
    }
}
