//! Empirical estimation of the averaging time of Definition 1.
//!
//! The paper defines `T_av` as (essentially) the earliest time `t` such that,
//! for the worst initial vector, the probability that the normalized variance
//! `var X(T)/var X(0)` ever exceeds `1/e²` again after `t` is below `1/e`.
//! The estimator here makes that operational:
//!
//! 1. run `R` independent simulations from a given initial condition (by
//!    default the adversarial cut-aligned vector from Section 2: `+1` on `V₁`
//!    and `−n₁/n₂` on `V₂`, which is the vector the lower-bound proof uses
//!    and empirically the worst case for sparse-cut instances);
//! 2. for each run record the **settling time** — the last checked time at
//!    which the normalized variance was still `≥ 1/e²` (runs continue until
//!    the variance has fallen well below the threshold, so later excursions
//!    by non-monotone algorithms such as Algorithm A are captured).  The
//!    engine tracks this in O(1) per check against the incremental moment
//!    tracker, so no trace needs to be recorded and the default per-tick
//!    check resolution costs neither time nor memory;
//! 3. report the `(1 − 1/e)`-quantile of the settling times, the empirical
//!    analogue of Definition 1, along with the mean and the raw samples.
//!
//! Runs that hit the per-run time cap **or** the hard event budget are
//! *censored* observations: their settling time is recorded as the last time
//! the variance was still above the threshold when the run was cut off, and
//! they are counted in [`AveragingTimeEstimate::censored_runs`] rather than
//! aborting the whole estimate.
//!
//! The runs are i.i.d. sample paths — each a pure function of its derived
//! per-run seed — so the estimator fans them out over a
//! [`gossip_exec::Executor`] worker pool.  Results are collected **in run
//! order**, which makes the estimate byte-identical to the serial one at any
//! job count; [`EstimatorConfig::jobs`] (or the `GOSSIP_JOBS` environment
//! variable) controls the pool width.

use crate::{CoreError, Result};
use gossip_exec::Executor;
use gossip_graph::{Graph, Partition};
use gossip_sim::engine::{AsyncSimulator, ClockModel, SimulationConfig};
use gossip_sim::handler::EdgeTickHandler;
use gossip_sim::stopping::{StoppingRule, DEFINITION1_THRESHOLD};
use gossip_sim::values::NodeValues;
use gossip_sim::{ClockScratch, SimError};
use serde::{Deserialize, Serialize};

/// Per-worker reusable buffers for the run fan-out: one state vector and one
/// set of clock-queue buffers, recycled across every run a worker claims so
/// the hot path stops allocating per derived seed.
#[derive(Debug, Default)]
struct RunScratch {
    values: Option<NodeValues>,
    clock: ClockScratch,
}

/// Configuration of the estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Base RNG seed; run `r` uses `seed + r`.
    pub seed: u64,
    /// Number of independent runs.
    pub runs: usize,
    /// The variance-ratio threshold of Definition 1 (default `1/e²`).
    pub threshold: f64,
    /// Each run continues until the variance ratio falls below
    /// `threshold × confirmation_factor` (or the time cap), so that late
    /// excursions above the threshold are observed.  Must lie in `(0, 1]`.
    pub confirmation_factor: f64,
    /// Hard cap on simulated time per run.
    pub max_time: f64,
    /// Hard cap on processed events per run; a run exhausting it is recorded
    /// as a censored observation.
    pub max_events: u64,
    /// How often (in ticks) the variance is checked.  Checks are O(1)
    /// against the incremental moment tracker, so the default of 1 (exact
    /// per-tick settling resolution) is affordable at any graph size.
    pub check_every_ticks: u64,
    /// Which clock sampler to use.
    pub clock_model: ClockModel,
    /// The quantile of settling times reported as the averaging time
    /// (default `1 − 1/e`, matching Definition 1).
    pub quantile: f64,
    /// Worker threads the independent runs fan out over.  `None` (the
    /// default) resolves `GOSSIP_JOBS`, then the machine's available
    /// parallelism; `Some(1)` forces the serial path.  Every setting
    /// produces byte-identical estimates — runs are collected in run order —
    /// so this knob only changes wall-clock time.
    pub jobs: Option<usize>,
    /// Intra-run sharding passed through to
    /// [`SimulationConfig::shards`](gossip_sim::engine::SimulationConfig::shards):
    /// `Some(k)` makes each simulation apply conflict-free event batches over
    /// `k` workers (bit-identical across every shard count, including
    /// `Some(1)`); `None` (the default) keeps the legacy per-tick loop.
    /// Handlers without a pairwise kernel fall back to the legacy loop.
    pub shards: Option<usize>,
}

impl EstimatorConfig {
    /// Creates a configuration with the given seed and defaults
    /// (15 runs, Definition 1 threshold, `1 − 1/e` quantile).
    pub fn new(seed: u64) -> Self {
        EstimatorConfig {
            seed,
            runs: 15,
            threshold: DEFINITION1_THRESHOLD,
            confirmation_factor: 0.05,
            max_time: 1e6,
            max_events: 200_000_000,
            check_every_ticks: 1,
            clock_model: ClockModel::PerEdgeQueue,
            quantile: 1.0 - (-1.0f64).exp(),
            jobs: None,
            shards: None,
        }
    }

    /// Sets the number of runs.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the variance-ratio threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the per-run time cap.
    pub fn with_max_time(mut self, max_time: f64) -> Self {
        self.max_time = max_time;
        self
    }

    /// Sets the per-run event budget.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Sets the variance sampling stride in ticks.
    pub fn with_check_every_ticks(mut self, ticks: u64) -> Self {
        self.check_every_ticks = ticks.max(1);
        self
    }

    /// Selects the clock sampler.
    pub fn with_clock_model(mut self, model: ClockModel) -> Self {
        self.clock_model = model;
        self
    }

    /// Sets the reported quantile.
    pub fn with_quantile(mut self, quantile: f64) -> Self {
        self.quantile = quantile;
        self
    }

    /// Sets the worker-thread override for the run fan-out (see
    /// [`Self::jobs`]).
    pub fn with_jobs(mut self, jobs: Option<usize>) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the intra-run shard count (see [`Self::shards`]).
    pub fn with_shards(mut self, shards: Option<usize>) -> Self {
        self.shards = shards;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.runs == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "estimator requires at least one run".into(),
            });
        }
        if !(0.0 < self.threshold && self.threshold < 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("threshold must lie in (0, 1), got {}", self.threshold),
            });
        }
        if !(0.0 < self.confirmation_factor && self.confirmation_factor <= 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "confirmation factor must lie in (0, 1], got {}",
                    self.confirmation_factor
                ),
            });
        }
        if !(self.max_time > 0.0 && self.max_time.is_finite()) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "max_time must be positive and finite, got {}",
                    self.max_time
                ),
            });
        }
        if self.max_events == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "max_events must be at least 1".into(),
            });
        }
        if !(0.0 < self.quantile && self.quantile < 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("quantile must lie in (0, 1), got {}", self.quantile),
            });
        }
        Ok(())
    }
}

/// The estimator's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AveragingTimeEstimate {
    /// The reported averaging time: the configured quantile of the per-run
    /// settling times.
    pub averaging_time: f64,
    /// Mean of the per-run settling times.
    pub mean_settling_time: f64,
    /// Maximum per-run settling time observed.
    pub max_settling_time: f64,
    /// The raw settling time of every run, in run order.
    pub settling_times: Vec<f64>,
    /// Number of runs whose variance ratio actually dropped below the
    /// confirmation level before the time cap.
    pub confirmed_runs: usize,
    /// Number of runs that hit the time cap or exhausted the event budget
    /// instead (their settling time is censored at the point the run was cut
    /// off and the estimate is a lower bound).
    pub censored_runs: usize,
}

impl AveragingTimeEstimate {
    /// `true` if every run converged below the confirmation level (no
    /// censoring).
    pub fn fully_confirmed(&self) -> bool {
        self.censored_runs == 0
    }
}

/// Derives the simulation seed of run `run` from the estimator's base seed.
///
/// A plain `base + run` would make estimators with nearby base seeds share
/// most of their sample paths (runs {s, s+1, …} and {s+1, s+2, …} overlap),
/// which silently correlates experiments that pick adjacent seeds and can
/// even make their reported quantiles collide bit-for-bit.  Mixing with
/// splitmix64 gives every `(base, run)` pair an effectively independent
/// stream while staying a pure function of the pinned seed.
fn derive_run_seed(base: u64, run: u64) -> u64 {
    let mut z = base ^ run.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Monte-Carlo estimator of Definition 1's averaging time.
#[derive(Debug, Clone)]
pub struct AveragingTimeEstimator {
    config: EstimatorConfig,
}

impl AveragingTimeEstimator {
    /// Creates an estimator.
    pub fn new(config: EstimatorConfig) -> Self {
        AveragingTimeEstimator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// The adversarial initial condition of Section 2: `+1` on `V₁`,
    /// `−n₁/n₂` on `V₂` (mean exactly zero).
    pub fn adversarial_initial(partition: &Partition) -> NodeValues {
        let n1 = partition.block_one_size() as f64;
        let n2 = partition.block_two_size() as f64;
        let mut values = vec![0.0; partition.node_count()];
        for &node in partition.block_one() {
            values[node.index()] = 1.0;
        }
        for &node in partition.block_two() {
            values[node.index()] = -n1 / n2;
        }
        NodeValues::from_values(values).expect("finite by construction")
    }

    /// Estimates the averaging time of the algorithm produced by `factory`
    /// starting from the adversarial cut-aligned initial condition.
    ///
    /// `factory` is called once per run so that algorithms with internal
    /// state (counters, RNGs, memory) start fresh each time.  It must be
    /// `Sync`: runs fan out over worker threads, each calling the factory
    /// for its own fresh handler (the handler itself never crosses
    /// threads).
    ///
    /// # Errors
    ///
    /// Returns configuration errors and propagates simulation failures.
    pub fn estimate<H, F>(
        &self,
        graph: &Graph,
        partition: &Partition,
        factory: F,
    ) -> Result<AveragingTimeEstimate>
    where
        H: EdgeTickHandler,
        F: Fn() -> H + Sync,
    {
        let initial = Self::adversarial_initial(partition);
        self.estimate_with_initial(graph, Some(partition), &initial, factory)
    }

    /// Estimates the averaging time from an explicit initial condition.
    ///
    /// The independent runs are distributed over an [`Executor`] whose
    /// width is [`EstimatorConfig::jobs`] (default: `GOSSIP_JOBS`, then the
    /// available parallelism).  Results are collected in run order, so the
    /// estimate — every settling time, the quantile, the censoring counts,
    /// and any propagated error — is byte-identical to the serial one.
    ///
    /// # Errors
    ///
    /// Returns configuration errors and propagates simulation failures (for
    /// parallel runs, the failure of the lowest-numbered failing run, which
    /// is exactly what the serial loop reported).
    pub fn estimate_with_initial<H, F>(
        &self,
        graph: &Graph,
        partition: Option<&Partition>,
        initial: &NodeValues,
        factory: F,
    ) -> Result<AveragingTimeEstimate>
    where
        H: EdgeTickHandler,
        F: Fn() -> H + Sync,
    {
        self.config.validate()?;
        let initial_variance = initial.variance();

        // One task per run: a pure function of the derived per-run seed,
        // returning (confirmed?, settling time).  Each worker recycles one
        // `RunScratch` — its state vector and clock buffers — across all the
        // runs it claims; the simulator rebuilds both from scratch-agnostic
        // inputs, so recycling cannot leak state between runs.
        let run_one = |scratch: &mut RunScratch, run: usize| -> gossip_sim::Result<(bool, f64)> {
            let seed = derive_run_seed(self.config.seed, run as u64);
            let stop = StoppingRule::variance_ratio_below(
                self.config.threshold * self.config.confirmation_factor,
            )
            .or_max_time(self.config.max_time);
            let mut sim_config = SimulationConfig::new(seed)
                .with_stopping_rule(stop)
                .with_clock_model(self.config.clock_model)
                .with_check_every_ticks(self.config.check_every_ticks)
                .with_max_events(self.config.max_events)
                .with_settling_threshold(self.config.threshold);
            if let Some(p) = partition {
                sim_config = sim_config.with_partition(p.clone());
            }
            if let Some(shards) = self.config.shards {
                sim_config = sim_config.with_shards(shards);
            }
            let run_initial = match scratch.values.take() {
                Some(mut values) => {
                    values.copy_from(initial);
                    values
                }
                None => initial.clone(),
            };
            let mut simulator = AsyncSimulator::new_with_scratch(
                graph,
                run_initial,
                factory(),
                sim_config,
                &mut scratch.clock,
            )?;
            let confirmed = match simulator.run() {
                Ok(outcome) => outcome.converged(),
                // A run that exhausts its hard event budget is censored,
                // exactly like one that hits the time cap: the algorithm had
                // not confirmed convergence when the budget ran out, but the
                // settling observation up to that point is still valid.
                Err(SimError::EventBudgetExhausted { .. }) => false,
                Err(other) => return Err(other),
            };
            // The engine tracked the last checked time with the normalized
            // variance still at or above the threshold — valid even when the
            // run ended in budget exhaustion.
            let settle = if initial_variance <= 0.0 {
                0.0
            } else {
                simulator.settling_time()
            };
            let (_, values) = simulator.into_parts_with_scratch(&mut scratch.clock);
            scratch.values = Some(values);
            Ok((confirmed, settle))
        };
        let executor = Executor::with_override(self.config.jobs);
        let observations =
            executor.try_map_indexed_with(self.config.runs, RunScratch::default, run_one)?;

        let mut settling_times = Vec::with_capacity(self.config.runs);
        let mut confirmed_runs = 0usize;
        let mut censored_runs = 0usize;
        for (confirmed, settle) in observations {
            if confirmed {
                confirmed_runs += 1;
            } else {
                censored_runs += 1;
            }
            settling_times.push(settle);
        }

        let mut sorted = settling_times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("settling times are finite"));
        let index = ((self.config.quantile * sorted.len() as f64).ceil() as usize)
            .clamp(1, sorted.len())
            - 1;
        let averaging_time = sorted[index];
        let mean_settling_time = settling_times.iter().sum::<f64>() / settling_times.len() as f64;
        let max_settling_time = sorted.last().copied().unwrap_or(0.0);

        Ok(AveragingTimeEstimate {
            averaging_time,
            mean_settling_time,
            max_settling_time,
            settling_times,
            confirmed_runs,
            censored_runs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convex::VanillaGossip;
    use crate::sparse_cut::{SparseCutAlgorithm, SparseCutConfig};
    use gossip_graph::generators::{complete, dumbbell};
    use gossip_graph::Partition;

    #[test]
    fn config_validation() {
        let bad_runs = EstimatorConfig::new(1).with_runs(0);
        let bad_threshold = EstimatorConfig::new(1).with_threshold(0.0);
        let bad_time = EstimatorConfig::new(1).with_max_time(0.0);
        let bad_quantile = EstimatorConfig::new(1).with_quantile(1.0);
        let (g, p) = dumbbell(3).unwrap();
        for config in [bad_runs, bad_threshold, bad_time, bad_quantile] {
            let est = AveragingTimeEstimator::new(config);
            assert!(est.estimate(&g, &p, VanillaGossip::new).is_err());
        }
        let mut ok = EstimatorConfig::new(1);
        ok.confirmation_factor = 0.0;
        assert!(AveragingTimeEstimator::new(ok)
            .estimate(&g, &p, VanillaGossip::new)
            .is_err());
    }

    #[test]
    fn adversarial_initial_has_zero_mean_and_unit_block_values() {
        let (_, p) = dumbbell(5).unwrap();
        let v = AveragingTimeEstimator::adversarial_initial(&p);
        assert!(v.mean().abs() < 1e-12);
        assert_eq!(v.get(gossip_graph::NodeId(0)), 1.0);
        assert_eq!(v.get(gossip_graph::NodeId(9)), -1.0);
        // Asymmetric case: block two holds −n1/n2.
        let (g2, _) = dumbbell(2).unwrap();
        let p2 = Partition::from_block_one(&g2, &[gossip_graph::NodeId(0)]).unwrap();
        let v2 = AveragingTimeEstimator::adversarial_initial(&p2);
        assert!((v2.get(gossip_graph::NodeId(3)) + 1.0 / 3.0).abs() < 1e-12);
        assert!(v2.mean().abs() < 1e-12);
    }

    #[test]
    fn vanilla_on_complete_graph_settles_quickly() {
        let g = complete(10).unwrap();
        let p =
            Partition::from_block_one(&g, &(0..5).map(gossip_graph::NodeId).collect::<Vec<_>>())
                .unwrap();
        let est =
            AveragingTimeEstimator::new(EstimatorConfig::new(7).with_runs(5).with_max_time(500.0));
        let result = est.estimate(&g, &p, VanillaGossip::new).unwrap();
        assert!(result.fully_confirmed());
        assert_eq!(result.settling_times.len(), 5);
        assert!(result.averaging_time > 0.0);
        assert!(result.averaging_time <= result.max_settling_time + 1e-12);
        assert!(result.mean_settling_time <= result.max_settling_time + 1e-12);
        // A complete graph on 10 nodes averages in a handful of time units.
        assert!(result.averaging_time < 20.0);
    }

    #[test]
    fn zero_variance_initial_settles_immediately() {
        let g = complete(4).unwrap();
        let p = Partition::from_block_one(&g, &[gossip_graph::NodeId(0)]).unwrap();
        let est = AveragingTimeEstimator::new(EstimatorConfig::new(3).with_runs(3));
        let initial = NodeValues::constant(4, 1.0);
        let result = est
            .estimate_with_initial(&g, Some(&p), &initial, VanillaGossip::new)
            .unwrap();
        assert_eq!(result.averaging_time, 0.0);
        assert!(result.fully_confirmed());
    }

    #[test]
    fn censoring_reported_when_time_cap_too_small() {
        // Vanilla gossip on the dumbbell needs Ω(n1) time; cap far below it.
        let (g, p) = dumbbell(16).unwrap();
        let est =
            AveragingTimeEstimator::new(EstimatorConfig::new(5).with_runs(3).with_max_time(0.5));
        let result = est.estimate(&g, &p, VanillaGossip::new).unwrap();
        assert_eq!(result.censored_runs, 3);
        assert!(!result.fully_confirmed());
    }

    #[test]
    fn event_budget_exhaustion_is_censored_not_fatal() {
        // 500 events on a 241-edge dumbbell is ~2 time units of simulated
        // time — nowhere near the Ω(n1) the convex class needs, so every run
        // exhausts the budget.  That must censor, not abort.
        let (g, p) = dumbbell(16).unwrap();
        let est = AveragingTimeEstimator::new(
            EstimatorConfig::new(5)
                .with_runs(3)
                .with_max_time(50.0)
                .with_max_events(500),
        );
        let result = est.estimate(&g, &p, VanillaGossip::new).unwrap();
        assert_eq!(result.censored_runs, 3);
        assert_eq!(result.confirmed_runs, 0);
        assert!(!result.fully_confirmed());
        // The censored settling observation is the last time the variance
        // was still above threshold, i.e. roughly where the budget ran out.
        assert!(result.averaging_time > 0.0);
        assert!(result.averaging_time < 50.0);
    }

    #[test]
    fn zero_event_budget_is_rejected() {
        let (g, p) = dumbbell(3).unwrap();
        let est = AveragingTimeEstimator::new(EstimatorConfig::new(1).with_max_events(0));
        assert!(est.estimate(&g, &p, VanillaGossip::new).is_err());
    }

    #[test]
    fn algorithm_a_beats_vanilla_on_dumbbell_estimates() {
        // At small n Algorithm A's epoch overhead C·ln n·T_van can exceed the
        // convex Θ(n₁) cost, so use a moderately sized instance and the
        // moderate epoch constant C = 2 to test the asymptotic relationship.
        let (g, p) = dumbbell(20).unwrap();
        let est = AveragingTimeEstimator::new(
            EstimatorConfig::new(11)
                .with_runs(5)
                .with_max_time(20_000.0),
        );
        let vanilla = est.estimate(&g, &p, VanillaGossip::new).unwrap();
        let algo_a = est
            .estimate(&g, &p, || {
                SparseCutAlgorithm::from_partition(
                    &g,
                    &p,
                    SparseCutConfig::new().with_epoch_constant(2.0),
                )
                .expect("valid partition")
            })
            .unwrap();
        assert!(vanilla.fully_confirmed());
        assert!(algo_a.fully_confirmed());
        assert!(
            algo_a.averaging_time < vanilla.averaging_time,
            "Algorithm A ({}) should beat vanilla ({}) on the dumbbell",
            algo_a.averaging_time,
            vanilla.averaging_time
        );
    }

    #[test]
    fn parallel_estimates_are_byte_identical_to_serial() {
        let (g, p) = dumbbell(6).unwrap();
        let estimate_at = |jobs: usize| {
            AveragingTimeEstimator::new(
                EstimatorConfig::new(13)
                    .with_runs(6)
                    .with_max_time(2_000.0)
                    .with_jobs(Some(jobs)),
            )
            .estimate(&g, &p, VanillaGossip::new)
            .unwrap()
        };
        let serial = estimate_at(1);
        for jobs in [2, 4, 16] {
            let parallel = estimate_at(jobs);
            assert_eq!(serial, parallel, "jobs = {jobs}");
            for (a, b) in serial
                .settling_times
                .iter()
                .zip(parallel.settling_times.iter())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "jobs = {jobs}");
            }
        }
    }

    #[test]
    fn sharded_estimates_are_byte_identical_across_shard_counts() {
        let (g, p) = dumbbell(6).unwrap();
        let estimate_at = |shards: usize| {
            AveragingTimeEstimator::new(
                EstimatorConfig::new(17)
                    .with_runs(4)
                    .with_max_time(2_000.0)
                    .with_shards(Some(shards)),
            )
            .estimate(&g, &p, VanillaGossip::new)
            .unwrap()
        };
        let one = estimate_at(1);
        for shards in [2, 4] {
            let sharded = estimate_at(shards);
            assert_eq!(one, sharded, "shards = {shards}");
            for (a, b) in one.settling_times.iter().zip(sharded.settling_times.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "shards = {shards}");
            }
        }
    }

    #[test]
    fn parallel_error_matches_serial_first_failing_run() {
        // A handler that poisons the state makes every run fail; serial and
        // parallel estimators must report the same error (the lowest run's).
        struct Poison;
        impl gossip_sim::handler::EdgeTickHandler for Poison {
            fn on_edge_tick(
                &mut self,
                values: &mut gossip_sim::values::NodeValues,
                _ctx: &gossip_sim::handler::EdgeTickContext<'_>,
            ) {
                values.set(gossip_graph::NodeId(0), f64::NAN);
            }
        }
        let (g, p) = dumbbell(4).unwrap();
        let run = |jobs: usize| {
            AveragingTimeEstimator::new(EstimatorConfig::new(3).with_runs(4).with_jobs(Some(jobs)))
                .estimate(&g, &p, || Poison)
                .unwrap_err()
        };
        assert_eq!(run(1).to_string(), run(4).to_string());
    }

    #[test]
    fn quantile_selection_is_order_statistic() {
        // With quantile ~0.63 and 5 runs, the 4th smallest settling time is
        // reported (ceil(0.632 * 5) = 4).
        let (g, p) = dumbbell(4).unwrap();
        let est = AveragingTimeEstimator::new(
            EstimatorConfig::new(2).with_runs(5).with_max_time(5_000.0),
        );
        let result = est.estimate(&g, &p, VanillaGossip::new).unwrap();
        let mut sorted = result.settling_times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((result.averaging_time - sorted[3]).abs() < 1e-12);
    }
}
