//! Concentration bounds.
//!
//! Two bounds appear in the paper:
//!
//! * **Theorem 3**: for the simple unbiased walk on ℤ,
//!   `P[S_k ≥ s√k] ≤ c·e^{−βs²}`.  The standard Hoeffding constants are
//!   `c = 1`, `β = ½`, which [`simple_walk_tail_bound`] uses.
//! * the Poisson tail used in Section 2 to control the number of cut-edge
//!   ticks by time `t` (a Poisson variable with mean `t·|E₁₂|`).
//!
//! The experiment harness compares these closed forms against empirical tail
//! frequencies (see [`crate::random_walk::simple_walk_tail_frequency`]).

use crate::{AnalysisError, Result};

/// Hoeffding bound for a sum of `k` independent values in `[lo, hi]`:
/// `P[Σ − E[Σ] ≥ t] ≤ exp(−2t²/(k(hi−lo)²))`.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidParameter`] if `k == 0`, `hi <= lo`, or
/// `t < 0`.
pub fn hoeffding_upper_tail(k: usize, lo: f64, hi: f64, t: f64) -> Result<f64> {
    if k == 0 {
        return Err(AnalysisError::InvalidParameter {
            reason: "Hoeffding bound requires at least one summand".into(),
        });
    }
    if hi <= lo || !hi.is_finite() || !lo.is_finite() {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("invalid range [{lo}, {hi}]"),
        });
    }
    if t < 0.0 {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("deviation must be non-negative, got {t}"),
        });
    }
    let range = hi - lo;
    Ok((-2.0 * t * t / (k as f64 * range * range)).exp().min(1.0))
}

/// The paper's Theorem 3 specialization: `P[S_k ≥ s√k] ≤ e^{−s²/2}` for the
/// simple ±1 walk.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidParameter`] if `k == 0` or `s < 0`.
pub fn simple_walk_tail_bound(k: usize, s: f64) -> Result<f64> {
    if s < 0.0 {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("s must be non-negative, got {s}"),
        });
    }
    // S_k is a sum of k terms in [−1, 1] with mean 0; deviation t = s√k.
    hoeffding_upper_tail(k, -1.0, 1.0, s * (k as f64).sqrt())
}

/// Chernoff upper-tail bound for a Poisson variable with mean `lambda`:
/// `P[X ≥ x] ≤ exp(−lambda)·(e·lambda/x)^x` for `x > lambda` (and 1
/// otherwise).
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidParameter`] for non-positive `lambda` or
/// negative `x`.
pub fn poisson_upper_tail(lambda: f64, x: f64) -> Result<f64> {
    if lambda <= 0.0 || !lambda.is_finite() {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("lambda must be positive and finite, got {lambda}"),
        });
    }
    if x < 0.0 {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("x must be non-negative, got {x}"),
        });
    }
    if x <= lambda {
        return Ok(1.0);
    }
    // exp(−λ + x − x·ln(x/λ)) in log-space for numerical stability.
    let log_bound = -lambda + x - x * (x / lambda).ln();
    Ok(log_bound.exp().min(1.0))
}

/// Chernoff lower-tail bound for a Poisson variable with mean `lambda`:
/// `P[X ≤ x] ≤ exp(−lambda)·(e·lambda/x)^x` for `x < lambda` (and 1
/// otherwise); `x = 0` gives exactly `exp(−lambda)`.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidParameter`] for non-positive `lambda` or
/// negative `x`.
pub fn poisson_lower_tail(lambda: f64, x: f64) -> Result<f64> {
    if lambda <= 0.0 || !lambda.is_finite() {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("lambda must be positive and finite, got {lambda}"),
        });
    }
    if x < 0.0 {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("x must be non-negative, got {x}"),
        });
    }
    if x >= lambda {
        return Ok(1.0);
    }
    if x == 0.0 {
        return Ok((-lambda).exp());
    }
    let log_bound = -lambda + x - x * (x / lambda).ln();
    Ok(log_bound.exp().min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_walk::simple_walk_tail_frequency;
    use proptest::prelude::*;

    #[test]
    fn hoeffding_validation_and_basic_values() {
        assert!(hoeffding_upper_tail(0, 0.0, 1.0, 1.0).is_err());
        assert!(hoeffding_upper_tail(5, 1.0, 1.0, 1.0).is_err());
        assert!(hoeffding_upper_tail(5, 0.0, 1.0, -1.0).is_err());
        // Zero deviation: trivial bound of 1.
        assert_eq!(hoeffding_upper_tail(10, 0.0, 1.0, 0.0).unwrap(), 1.0);
        // Monotone decreasing in t.
        let a = hoeffding_upper_tail(10, -1.0, 1.0, 2.0).unwrap();
        let b = hoeffding_upper_tail(10, -1.0, 1.0, 4.0).unwrap();
        assert!(b < a);
        assert!(a <= 1.0);
    }

    #[test]
    fn simple_walk_bound_matches_hoeffding_form() {
        let k = 100;
        let s = 1.5;
        let bound = simple_walk_tail_bound(k, s).unwrap();
        assert!((bound - (-s * s / 2.0).exp()).abs() < 1e-12);
        assert!(simple_walk_tail_bound(0, 1.0).is_err());
        assert!(simple_walk_tail_bound(10, -1.0).is_err());
        assert_eq!(simple_walk_tail_bound(10, 0.0).unwrap(), 1.0);
    }

    #[test]
    fn empirical_simple_walk_tails_below_bound() {
        // The Theorem 3 shape check used by experiment E9.
        let k = 64;
        for &s in &[0.5, 1.0, 1.5, 2.0] {
            let empirical = simple_walk_tail_frequency(k, s, 2000, 31);
            let bound = simple_walk_tail_bound(k, s).unwrap();
            // Allow a small slack for Monte-Carlo noise at the loosest point.
            assert!(
                empirical <= bound + 0.05,
                "s = {s}: empirical {empirical} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn poisson_tail_validation_and_monotonicity() {
        assert!(poisson_upper_tail(0.0, 1.0).is_err());
        assert!(poisson_upper_tail(1.0, -1.0).is_err());
        assert!(poisson_lower_tail(-1.0, 1.0).is_err());
        assert!(poisson_lower_tail(1.0, -0.5).is_err());
        // Below the mean the upper-tail bound is trivial.
        assert_eq!(poisson_upper_tail(5.0, 3.0).unwrap(), 1.0);
        assert_eq!(poisson_lower_tail(5.0, 7.0).unwrap(), 1.0);
        // Far above the mean the bound is tiny and decreasing.
        let a = poisson_upper_tail(5.0, 10.0).unwrap();
        let b = poisson_upper_tail(5.0, 20.0).unwrap();
        assert!(b < a && a < 1.0);
        // Lower tail at zero equals exp(−λ).
        assert!((poisson_lower_tail(5.0, 0.0).unwrap() - (-5.0f64).exp()).abs() < 1e-12);
        let c = poisson_lower_tail(10.0, 2.0).unwrap();
        let d = poisson_lower_tail(10.0, 5.0).unwrap();
        assert!(c < d);
    }

    #[test]
    fn poisson_bound_controls_cut_edge_ticks_scenario() {
        // Section 2 scenario: by time t the number of cut-edge ticks is
        // Poisson(t·|E12|).  For t = 1, |E12| = 1, the probability of seeing
        // ≥ n1/4 = 8 ticks should be minuscule.
        let bound = poisson_upper_tail(1.0, 8.0).unwrap();
        assert!(bound < 1e-3);
    }

    proptest! {
        #[test]
        fn prop_bounds_are_probabilities(
            k in 1usize..500,
            s in 0.0f64..5.0,
            lambda in 0.1f64..50.0,
            x in 0.0f64..100.0,
        ) {
            let b1 = simple_walk_tail_bound(k, s).unwrap();
            prop_assert!((0.0..=1.0).contains(&b1));
            let b2 = poisson_upper_tail(lambda, x).unwrap();
            prop_assert!((0.0..=1.0).contains(&b2));
            let b3 = poisson_lower_tail(lambda, x).unwrap();
            prop_assert!((0.0..=1.0).contains(&b3));
        }
    }
}
