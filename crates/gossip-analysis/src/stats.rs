//! Descriptive statistics: means, variances, quantiles, confidence intervals.

use crate::{AnalysisError, Result};
use serde::{Deserialize, Serialize};

/// Arithmetic mean of a sample.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptySample`] for an empty slice.
pub fn mean(sample: &[f64]) -> Result<f64> {
    if sample.is_empty() {
        return Err(AnalysisError::EmptySample);
    }
    Ok(sample.iter().sum::<f64>() / sample.len() as f64)
}

/// Unbiased sample variance (divides by `n − 1`); `0.0` for a single point.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptySample`] for an empty slice.
pub fn sample_variance(sample: &[f64]) -> Result<f64> {
    let m = mean(sample)?;
    if sample.len() == 1 {
        return Ok(0.0);
    }
    Ok(sample.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (sample.len() - 1) as f64)
}

/// Sample standard deviation.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptySample`] for an empty slice.
pub fn sample_std(sample: &[f64]) -> Result<f64> {
    Ok(sample_variance(sample)?.sqrt())
}

/// A sample validated and sorted **once**, for repeated order-statistic
/// queries without the per-call clone-and-sort of [`quantile`].
///
/// Construction costs one `O(n log n)` sort; every subsequent
/// [`Self::quantile`] is `O(1)` and bit-identical to the free function on
/// the same data.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedSample {
    sorted: Vec<f64>,
}

impl SortedSample {
    /// Validates and sorts a sample.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::EmptySample`] for an empty slice and
    /// [`AnalysisError::InvalidParameter`] if the data contain NaN.
    pub fn new(sample: &[f64]) -> Result<Self> {
        if sample.is_empty() {
            return Err(AnalysisError::EmptySample);
        }
        if sample.iter().any(|x| x.is_nan()) {
            return Err(AnalysisError::InvalidParameter {
                reason: "sample contains NaN".into(),
            });
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after the check above"));
        Ok(SortedSample { sorted })
    }

    /// Number of data points (never zero).
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false` — construction rejects empty samples; provided for
    /// clippy's `len_without_is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The data in ascending order.
    pub fn as_slice(&self) -> &[f64] {
        &self.sorted
    }

    /// Empirical quantile by linear interpolation between order statistics
    /// (`q = 0` is the minimum, `q = 1` the maximum), without re-sorting.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] if `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(AnalysisError::InvalidParameter {
                reason: format!("quantile must lie in [0, 1], got {q}"),
            });
        }
        let position = q * (self.sorted.len() - 1) as f64;
        let lower = position.floor() as usize;
        let upper = position.ceil() as usize;
        if lower == upper {
            Ok(self.sorted[lower])
        } else {
            let fraction = position - lower as f64;
            Ok(self.sorted[lower] * (1.0 - fraction) + self.sorted[upper] * fraction)
        }
    }

    /// The median (the 0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5).expect("0.5 is a valid quantile")
    }
}

/// Empirical quantile by linear interpolation between order statistics.
///
/// `q = 0` returns the minimum, `q = 1` the maximum.  Clones and sorts the
/// sample on every call — when querying several quantiles of one sample,
/// build a [`SortedSample`] (or call [`quantiles`]) to sort once.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptySample`] for an empty slice and
/// [`AnalysisError::InvalidParameter`] if `q ∉ [0, 1]` or the data contain
/// NaN.
pub fn quantile(sample: &[f64], q: f64) -> Result<f64> {
    if sample.is_empty() {
        return Err(AnalysisError::EmptySample);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("quantile must lie in [0, 1], got {q}"),
        });
    }
    SortedSample::new(sample)?.quantile(q)
}

/// Several quantiles of one sample with a single sort, each value
/// bit-identical to a standalone [`quantile`] call.
///
/// # Errors
///
/// See [`quantile`]; an invalid entry anywhere in `qs` fails the whole call.
pub fn quantiles(sample: &[f64], qs: &[f64]) -> Result<Vec<f64>> {
    let sorted = SortedSample::new(sample)?;
    qs.iter().map(|&q| sorted.quantile(q)).collect()
}

/// Median (the 0.5 quantile).
///
/// # Errors
///
/// See [`quantile`].
pub fn median(sample: &[f64]) -> Result<f64> {
    quantile(sample, 0.5)
}

/// A normal-approximation confidence interval for the mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean).
    pub estimate: f64,
    /// Lower endpoint.
    pub lower: f64,
    /// Upper endpoint.
    pub upper: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Returns `true` if `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// 95% normal-approximation confidence interval for the mean of a sample.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptySample`] for an empty slice.
pub fn mean_confidence_interval95(sample: &[f64]) -> Result<ConfidenceInterval> {
    let m = mean(sample)?;
    let s = sample_std(sample)?;
    let half = 1.96 * s / (sample.len() as f64).sqrt();
    Ok(ConfidenceInterval {
        estimate: m,
        lower: m - half,
        upper: m + half,
    })
}

/// A five-number-plus summary of a sample, serializable for the experiment
/// harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Lower quartile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::EmptySample`] for an empty slice and
    /// [`AnalysisError::InvalidParameter`] for NaN data.
    pub fn of(sample: &[f64]) -> Result<Self> {
        let sorted = SortedSample::new(sample)?;
        Ok(Summary {
            count: sample.len(),
            mean: mean(sample)?,
            std: sample_std(sample)?,
            min: sorted.quantile(0.0)?,
            q25: sorted.quantile(0.25)?,
            median: sorted.quantile(0.5)?,
            q75: sorted.quantile(0.75)?,
            max: sorted.quantile(1.0)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < 1e-12);
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((sample_std(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(mean(&[]).is_err());
        assert_eq!(sample_variance(&[3.0]).unwrap(), 0.0);
    }

    #[test]
    fn quantiles_and_median() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((median(&xs).unwrap() - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert!(quantile(&xs, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0, f64::NAN], 0.5).is_err());
        // Order does not matter.
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), median(&xs).unwrap());
    }

    #[test]
    fn sorted_sample_matches_per_call_quantiles_bitwise() {
        // Values whose interpolated quantiles are not exactly representable,
        // so any arithmetic difference between the sort-once path and the
        // per-call path would show up in the bits.
        let xs = [0.3, 0.1, 0.7, 0.2, 0.9, 0.4, 0.65];
        let sorted = SortedSample::new(&xs).unwrap();
        assert_eq!(sorted.len(), 7);
        assert!(!sorted.is_empty());
        let qs = [0.0, 0.1, 0.25, 0.5, 0.61, 0.75, 0.9, 1.0];
        let multi = quantiles(&xs, &qs).unwrap();
        for (&q, &got) in qs.iter().zip(multi.iter()) {
            let reference = quantile(&xs, q).unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "q = {q}");
            assert_eq!(
                sorted.quantile(q).unwrap().to_bits(),
                reference.to_bits(),
                "q = {q}"
            );
        }
        assert_eq!(sorted.median().to_bits(), median(&xs).unwrap().to_bits());
        // The sorted view is ascending.
        assert!(sorted.as_slice().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sorted_sample_and_quantiles_validate_like_quantile() {
        assert!(SortedSample::new(&[]).is_err());
        assert!(SortedSample::new(&[1.0, f64::NAN]).is_err());
        assert!(SortedSample::new(&[1.0]).unwrap().quantile(1.5).is_err());
        assert!(quantiles(&[], &[0.5]).is_err());
        assert!(quantiles(&[1.0, 2.0], &[0.5, -0.1]).is_err());
        assert_eq!(quantiles(&[1.0, 2.0], &[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn confidence_interval_behaviour() {
        let xs = [10.0, 12.0, 11.0, 9.0, 13.0, 10.0, 11.0, 12.0];
        let ci = mean_confidence_interval95(&xs).unwrap();
        assert!(ci.contains(ci.estimate));
        assert!(ci.lower < ci.estimate && ci.estimate < ci.upper);
        assert!(ci.half_width() > 0.0);
        assert!(!ci.contains(100.0));
        // Constant sample: zero-width interval.
        let ci = mean_confidence_interval95(&[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(ci.half_width(), 0.0);
        assert!(ci.contains(5.0));
    }

    #[test]
    fn summary_fields() {
        let xs = [3.0, 1.0, 2.0, 5.0, 4.0];
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!(s.q25 <= s.median && s.median <= s.q75);
        assert!(Summary::of(&[]).is_err());
    }

    proptest! {
        #[test]
        fn prop_mean_between_min_and_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let m = mean(&xs).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
        }

        #[test]
        fn prop_quantiles_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..40)) {
            let q1 = quantile(&xs, 0.2).unwrap();
            let q2 = quantile(&xs, 0.5).unwrap();
            let q3 = quantile(&xs, 0.8).unwrap();
            prop_assert!(q1 <= q2 + 1e-9);
            prop_assert!(q2 <= q3 + 1e-9);
        }

        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e3f64..1e3, 1..40)) {
            prop_assert!(sample_variance(&xs).unwrap() >= 0.0);
        }
    }
}
