//! The stochastic-dominance argument of the paper's Section 3.
//!
//! Algorithm A's analysis tracks `W_k = Σ_{i≤k} log‖A_i‖`, the accumulated
//! log-contraction of the epoch operators, and shows (Lemma 1 and Eq. 12)
//! that each increment satisfies
//!
//! * `log‖A_k‖ ≤ −(3/2)·log n` with probability at least ½, and
//! * `log‖A_k‖ ≤ log n` always.
//!
//! Consequently `W_k` is stochastically dominated by the lazy walk `W̃_k`
//! whose increments are `+log n` w.p. ½ and `−(3/2)·log n` w.p. ½
//! (Eqs. 13–14), and since `log(var X(T_k⁺)) − log(var X(0)) ≤ W̃_k`
//! (Eq. 15), the negative drift of `W̃` forces the variance down.
//!
//! This module provides:
//!
//! * [`DominatingWalk`] — the `W̃` process for a given `n`;
//! * [`couple_observed`] — the explicit monotone coupling that maps a
//!   sequence of *observed* increments (each `≤ log n`) to a valid `W̃`
//!   trajectory lying above the observed partial sums whenever the observed
//!   increments satisfy the Lemma 1 marginal;
//! * [`DominanceReport`] — the empirical check used by experiment E5: does
//!   the observed `log var` path stay below the coupled dominating walk, and
//!   how often does the per-epoch contraction event occur?

use crate::random_walk::TwoPointWalk;
use crate::{AnalysisError, Result};
use serde::{Deserialize, Serialize};

/// The dominating lazy walk `W̃_k` for a graph on `n` nodes.
#[derive(Debug, Clone)]
pub struct DominatingWalk {
    log_n: f64,
    walk: TwoPointWalk,
}

impl DominatingWalk {
    /// Creates the walk for a graph on `n ≥ 2` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] if `n < 2`.
    pub fn new(n: usize, seed: u64) -> Result<Self> {
        if n < 2 {
            return Err(AnalysisError::InvalidParameter {
                reason: format!("dominating walk requires n >= 2, got {n}"),
            });
        }
        let log_n = (n as f64).ln();
        Ok(DominatingWalk {
            log_n,
            walk: TwoPointWalk::new(log_n, -1.5 * log_n, 0.5, seed)?,
        })
    }

    /// The `log n` scale of the increments.
    pub fn log_n(&self) -> f64 {
        self.log_n
    }

    /// Expected increment per epoch: `−(log n)/4`.
    pub fn drift(&self) -> f64 {
        self.walk.drift()
    }

    /// Samples the positions after epochs `1..=k`.
    pub fn sample_path(&mut self, k: usize) -> Vec<f64> {
        self.walk.sample_path(k)
    }

    /// Smallest number of epochs `k` after which the *expected* position
    /// `E[W̃_k] = −k·(log n)/4` is at most `target` (e.g. `target = −2` for
    /// Definition 1's `1/e²`).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] if `target ≥ 0`.
    pub fn epochs_to_reach(&self, target: f64) -> Result<u64> {
        if target >= 0.0 {
            return Err(AnalysisError::InvalidParameter {
                reason: format!("target must be negative, got {target}"),
            });
        }
        Ok((target / self.drift()).ceil() as u64)
    }
}

/// Couples a sequence of observed per-epoch increments to a dominating `W̃`
/// trajectory: whenever the observed increment achieves the Lemma 1
/// contraction (`≤ −(3/2)·log n`), the dominating increment is
/// `−(3/2)·log n`; otherwise it is `+log n`.
///
/// Returns the partial sums of the dominating increments.  Provided every
/// observed increment is at most `log n` (Eq. 12), each coupled increment is
/// ≥ the observed one, so the returned path dominates the observed partial
/// sums pointwise.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidParameter`] if `n < 2`.
pub fn couple_observed(observed_increments: &[f64], n: usize) -> Result<Vec<f64>> {
    if n < 2 {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("coupling requires n >= 2, got {n}"),
        });
    }
    let log_n = (n as f64).ln();
    let mut path = Vec::with_capacity(observed_increments.len());
    let mut sum = 0.0;
    for &increment in observed_increments {
        let coupled = if increment <= -1.5 * log_n {
            -1.5 * log_n
        } else {
            log_n
        };
        sum += coupled;
        path.push(sum);
    }
    Ok(path)
}

/// Outcome of the empirical dominance check (experiment E5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DominanceReport {
    /// Number of epochs examined.
    pub epochs: usize,
    /// Fraction of epochs whose observed increment achieved the Lemma 1
    /// contraction `≤ −(3/2)·log n`.  The lemma asserts this is ≥ ½ in
    /// distribution.
    pub contraction_fraction: f64,
    /// Fraction of epochs whose observed increment exceeded `log n`
    /// (Eq. 12 asserts this never happens; numerical noise aside it should be
    /// zero).
    pub ceiling_violation_fraction: f64,
    /// `true` if the observed partial sums stay at or below the coupled
    /// dominating path at every epoch.
    pub dominated_pointwise: bool,
    /// Final observed partial sum.
    pub final_observed: f64,
    /// Final value of the coupled dominating path.
    pub final_dominating: f64,
}

impl DominanceReport {
    /// Checks a sequence of observed per-epoch increments of
    /// `log(var X(T_k⁺))` (or of `log‖A_k‖`) against the paper's dominance
    /// structure for a graph on `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::EmptySample`] for an empty sequence and
    /// [`AnalysisError::InvalidParameter`] if `n < 2`.
    pub fn from_increments(observed_increments: &[f64], n: usize) -> Result<Self> {
        if observed_increments.is_empty() {
            return Err(AnalysisError::EmptySample);
        }
        let log_n = (n as f64).ln();
        if n < 2 {
            return Err(AnalysisError::InvalidParameter {
                reason: format!("dominance check requires n >= 2, got {n}"),
            });
        }
        let coupled = couple_observed(observed_increments, n)?;
        let mut observed_sum = 0.0;
        let mut dominated = true;
        let mut contractions = 0usize;
        let mut violations = 0usize;
        for (i, &increment) in observed_increments.iter().enumerate() {
            observed_sum += increment;
            if observed_sum > coupled[i] + 1e-9 {
                dominated = false;
            }
            if increment <= -1.5 * log_n {
                contractions += 1;
            }
            if increment > log_n + 1e-9 {
                violations += 1;
            }
        }
        Ok(DominanceReport {
            epochs: observed_increments.len(),
            contraction_fraction: contractions as f64 / observed_increments.len() as f64,
            ceiling_violation_fraction: violations as f64 / observed_increments.len() as f64,
            dominated_pointwise: dominated,
            final_observed: observed_sum,
            final_dominating: *coupled.last().expect("non-empty by the check above"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn walk_construction_and_drift() {
        assert!(DominatingWalk::new(1, 3).is_err());
        let walk = DominatingWalk::new(16, 3).unwrap();
        let log_n = 16.0f64.ln();
        assert!((walk.log_n() - log_n).abs() < 1e-12);
        assert!((walk.drift() + log_n / 4.0).abs() < 1e-12);
    }

    #[test]
    fn epochs_to_reach_definition1_level() {
        let walk = DominatingWalk::new(64, 1).unwrap();
        let epochs = walk.epochs_to_reach(-2.0).unwrap();
        // Drift is −ln(64)/4 ≈ −1.04, so two epochs suffice in expectation.
        assert_eq!(epochs, 2);
        assert!(walk.epochs_to_reach(0.0).is_err());
        // Larger graphs have stronger drift, so never need more epochs.
        let big = DominatingWalk::new(4096, 1).unwrap();
        assert!(big.epochs_to_reach(-2.0).unwrap() <= epochs);
    }

    #[test]
    fn sampled_path_eventually_negative() {
        let mut walk = DominatingWalk::new(32, 5).unwrap();
        let path = walk.sample_path(500);
        assert_eq!(path.len(), 500);
        // Strong negative drift: the endpoint is far below zero.
        assert!(*path.last().unwrap() < -10.0 * 32.0f64.ln());
    }

    #[test]
    fn coupling_dominates_valid_observations() {
        let n = 16;
        let log_n = (n as f64).ln();
        // Observed increments that satisfy the Lemma 1 structure.
        let observed = vec![
            -2.0 * log_n,
            0.3 * log_n,
            -1.6 * log_n,
            -3.0 * log_n,
            0.9 * log_n,
        ];
        let coupled = couple_observed(&observed, n).unwrap();
        let mut sum = 0.0;
        for (i, &inc) in observed.iter().enumerate() {
            sum += inc;
            assert!(sum <= coupled[i] + 1e-12, "violated at epoch {i}");
        }
        assert!(couple_observed(&observed, 1).is_err());
    }

    #[test]
    fn report_on_well_behaved_increments() {
        let n = 16;
        let log_n = (n as f64).ln();
        let observed = vec![-2.0 * log_n, -1.5 * log_n, 0.5 * log_n, -1.7 * log_n];
        let report = DominanceReport::from_increments(&observed, n).unwrap();
        assert_eq!(report.epochs, 4);
        assert!((report.contraction_fraction - 0.75).abs() < 1e-12);
        assert_eq!(report.ceiling_violation_fraction, 0.0);
        assert!(report.dominated_pointwise);
        assert!(report.final_observed <= report.final_dominating);
    }

    #[test]
    fn report_detects_ceiling_violations() {
        let n = 8;
        let log_n = (n as f64).ln();
        // One increment exceeds log n, breaking Eq. 12 (and possibly the
        // pointwise dominance).
        let observed = vec![2.0 * log_n, -1.6 * log_n];
        let report = DominanceReport::from_increments(&observed, n).unwrap();
        assert!((report.ceiling_violation_fraction - 0.5).abs() < 1e-12);
        assert!(!report.dominated_pointwise);
        assert!(DominanceReport::from_increments(&[], n).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_coupling_dominates_whenever_increments_below_ceiling(
            raw in proptest::collection::vec(-4.0f64..1.0, 1..40),
            n in 2usize..200,
        ) {
            // Scale raw multipliers by log n so every increment is ≤ log n.
            let log_n = (n as f64).ln();
            let observed: Vec<f64> = raw.iter().map(|m| m * log_n).collect();
            let coupled = couple_observed(&observed, n).unwrap();
            let mut sum = 0.0;
            for (i, &inc) in observed.iter().enumerate() {
                sum += inc;
                prop_assert!(sum <= coupled[i] + 1e-9);
            }
            let report = DominanceReport::from_increments(&observed, n).unwrap();
            prop_assert!(report.dominated_pointwise);
            prop_assert_eq!(report.ceiling_violation_fraction, 0.0);
        }
    }
}
