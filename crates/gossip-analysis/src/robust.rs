//! Outlier-resistant estimators and adversary drift oracles.
//!
//! The estimators ([`trimmed_mean`], [`median_absolute_deviation`]) summarize
//! samples that may contain Byzantine outliers without letting a few extreme
//! values dominate.  The oracles bound how far an adversary can drag the
//! **honest-subset mean** of a gossip run:
//!
//! * [`honest_drift_bound`] is exact for *mass-conserving* pairwise rules
//!   (vanilla, trimmed-mean): an honest–honest contact conserves the honest
//!   sum exactly, and a falsified contact moves the contacted honest value by
//!   at most `|report − honest value|` (any convex combination of the two
//!   stays that close), so the honest mean moves at most
//!   `Σ|report − partner| / honest_count` over the whole run.  The simulator
//!   accumulates that sum exactly as `AdversaryStats::falsification_l1`.
//! * [`hull_drift_bound`] covers *non-conserving* rules (median-of-neighbors,
//!   whose median step is not antisymmetric between honest pairs): every
//!   update writes a convex combination of values already in the state and
//!   reports injected into it, so all values — and hence the honest mean —
//!   stay inside the convex hull of the initial values and all injected
//!   reports.  The bound is the largest excursion that hull permits from the
//!   clean consensus.

use crate::stats::SortedSample;
use crate::{AnalysisError, Result};

/// Symmetrically trimmed mean: drop the `⌊n·trim_fraction⌋` smallest and
/// largest values, then average the rest.
///
/// `trim_fraction = 0` is the plain mean; values approaching `0.5` keep only
/// the middle of the distribution (at least one value always survives).
///
/// # Errors
///
/// Returns [`AnalysisError::EmptySample`] for an empty slice and
/// [`AnalysisError::InvalidParameter`] if `trim_fraction ∉ [0, 0.5)` or the
/// data contain NaN.
pub fn trimmed_mean(sample: &[f64], trim_fraction: f64) -> Result<f64> {
    if !(0.0..0.5).contains(&trim_fraction) {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("trim fraction must lie in [0, 0.5), got {trim_fraction}"),
        });
    }
    let sorted = SortedSample::new(sample)?;
    let n = sorted.len();
    let cut = ((n as f64) * trim_fraction).floor() as usize;
    let kept = &sorted.as_slice()[cut..n - cut];
    debug_assert!(!kept.is_empty(), "cut < n/2 always leaves the middle");
    Ok(kept.iter().sum::<f64>() / kept.len() as f64)
}

/// Median absolute deviation: `median(|x − median(x)|)`, the classic
/// 50%-breakdown scale estimate (unscaled — multiply by 1.4826 for the
/// normal-consistent version).
///
/// # Errors
///
/// Returns [`AnalysisError::EmptySample`] for an empty slice and
/// [`AnalysisError::InvalidParameter`] for NaN data.
pub fn median_absolute_deviation(sample: &[f64]) -> Result<f64> {
    let center = SortedSample::new(sample)?.median();
    let deviations: Vec<f64> = sample.iter().map(|x| (x - center).abs()).collect();
    Ok(SortedSample::new(&deviations)?.median())
}

/// Drift bound for **mass-conserving** pairwise rules: the honest-subset
/// mean moves at most `falsification_l1 / honest_count` from the clean run's
/// honest mean, where `falsification_l1` is the run's accumulated
/// `Σ|report − honest partner value|` (`AdversaryStats::falsification_l1`).
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidParameter`] if `honest_count` is zero or
/// `falsification_l1` is negative or non-finite.
pub fn honest_drift_bound(falsification_l1: f64, honest_count: usize) -> Result<f64> {
    if honest_count == 0 {
        return Err(AnalysisError::InvalidParameter {
            reason: "honest-subset drift needs at least one honest node".into(),
        });
    }
    if !falsification_l1.is_finite() || falsification_l1 < 0.0 {
        return Err(AnalysisError::InvalidParameter {
            reason: format!(
                "falsification mass must be finite and non-negative, got {falsification_l1}"
            ),
        });
    }
    Ok(falsification_l1 / honest_count as f64)
}

/// Drift bound for **hull-preserving** rules (every update writes a convex
/// combination of current values and injected reports): the honest mean
/// stays inside `[lo, hi]` where `lo = min(initial_min, report_min)` and
/// `hi = max(initial_max, report_max)`, so its distance from
/// `reference_mean` (the clean consensus) is at most the larger one-sided
/// excursion that interval allows.
///
/// Runs with no injected reports pass `report_min = +∞` /
/// `report_max = −∞` (the `AdversaryStats` defaults); the hull then
/// degenerates to the initial range.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidParameter`] if the initial range is
/// inverted or non-finite, if a report bound is NaN, or if `reference_mean`
/// is non-finite or outside the hull (a reference the rule could never have
/// produced).
pub fn hull_drift_bound(
    initial_min: f64,
    initial_max: f64,
    report_min: f64,
    report_max: f64,
    reference_mean: f64,
) -> Result<f64> {
    if !initial_min.is_finite() || !initial_max.is_finite() || initial_min > initial_max {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("invalid initial range [{initial_min}, {initial_max}]"),
        });
    }
    if report_min.is_nan() || report_max.is_nan() {
        return Err(AnalysisError::InvalidParameter {
            reason: "report range contains NaN".into(),
        });
    }
    if !reference_mean.is_finite() {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("reference mean must be finite, got {reference_mean}"),
        });
    }
    let lo = initial_min.min(report_min);
    let hi = initial_max.max(report_max);
    if reference_mean < lo || reference_mean > hi {
        return Err(AnalysisError::InvalidParameter {
            reason: format!("reference mean {reference_mean} lies outside the hull [{lo}, {hi}]"),
        });
    }
    Ok((hi - reference_mean).max(reference_mean - lo))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_drops_outliers_symmetrically() {
        // One huge outlier among nine sane values: a 20% trim removes it
        // (and the smallest value), recovering a sane center.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 1000.0];
        let plain = trimmed_mean(&xs, 0.0).unwrap();
        assert!(plain > 100.0, "untrimmed mean is dominated by the outlier");
        let trimmed = trimmed_mean(&xs, 0.2).unwrap();
        // floor(9 · 0.2) = 1 from each end: mean of 2..=8.
        assert!((trimmed - 5.0).abs() < 1e-12);
        // A heavier trim keeps only the middle.
        assert_eq!(trimmed_mean(&[1.0, 5.0, 9.0], 0.4).unwrap(), 5.0);
    }

    #[test]
    fn trimmed_mean_validates_inputs() {
        assert!(trimmed_mean(&[], 0.1).is_err());
        assert!(trimmed_mean(&[1.0, f64::NAN], 0.1).is_err());
        for bad in [-0.1, 0.5, 1.0, f64::NAN] {
            assert!(trimmed_mean(&[1.0, 2.0], bad).is_err(), "fraction {bad}");
        }
        // fraction 0 equals the plain mean bitwise on sorted data.
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(trimmed_mean(&xs, 0.0).unwrap(), 2.0);
    }

    #[test]
    fn mad_is_robust_to_a_minority_of_outliers() {
        let sane = [10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9];
        let mad_sane = median_absolute_deviation(&sane).unwrap();
        let mut poisoned = sane.to_vec();
        poisoned.push(1e6);
        let mad_poisoned = median_absolute_deviation(&poisoned).unwrap();
        // One outlier in eight barely moves the MAD, while it explodes the
        // standard deviation.
        assert!(mad_poisoned < 10.0 * (mad_sane + 0.1));
        assert!(median_absolute_deviation(&[]).is_err());
        assert_eq!(median_absolute_deviation(&[5.0, 5.0, 5.0]).unwrap(), 0.0);
    }

    #[test]
    fn honest_drift_bound_is_the_per_capita_falsification_mass() {
        assert_eq!(honest_drift_bound(12.0, 4).unwrap(), 3.0);
        assert_eq!(honest_drift_bound(0.0, 7).unwrap(), 0.0);
        assert!(honest_drift_bound(1.0, 0).is_err());
        assert!(honest_drift_bound(-1.0, 3).is_err());
        assert!(honest_drift_bound(f64::INFINITY, 3).is_err());
        assert!(honest_drift_bound(f64::NAN, 3).is_err());
    }

    #[test]
    fn hull_drift_bound_covers_initial_and_report_ranges() {
        // Initial values in [0, 1], reports up to 5, consensus at 0.5: the
        // worst one-sided excursion is toward the report ceiling.
        assert_eq!(hull_drift_bound(0.0, 1.0, -0.5, 5.0, 0.5).unwrap(), 4.5);
        // No reports (AdversaryStats defaults): the hull is the initial
        // range.
        assert_eq!(
            hull_drift_bound(0.0, 1.0, f64::INFINITY, f64::NEG_INFINITY, 0.25).unwrap(),
            0.75
        );
        assert!(hull_drift_bound(1.0, 0.0, 0.0, 0.0, 0.5).is_err());
        assert!(hull_drift_bound(0.0, 1.0, f64::NAN, 1.0, 0.5).is_err());
        assert!(hull_drift_bound(0.0, 1.0, 0.0, 1.0, f64::NAN).is_err());
        assert!(
            hull_drift_bound(0.0, 1.0, 0.0, 1.0, 2.0).is_err(),
            "reference outside the hull"
        );
    }
}
