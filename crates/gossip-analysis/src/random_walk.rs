//! Random walks on the real line.
//!
//! Two walks matter for the paper's analysis:
//!
//! * the **simple ±1 walk** `S_k`, whose Gaussian-type tail bound
//!   (Theorem 3, `P[S_k ≥ s√k] ≤ c·e^{−βs²}`) closes the proof of Theorem 2;
//! * the **dominating lazy walk** `W̃_k` with increments `+log n` (probability
//!   ½) and `−(3/2)·log n` (probability ½), which stochastically dominates the
//!   sum of epoch log-contractions `W_k = Σ log‖A_i‖` (see
//!   [`crate::dominance`]).
//!
//! This module provides exact samplers for both, plus trajectory helpers
//! (running maximum, first passage, last exceedance) used by the experiment
//! harness.

use crate::{AnalysisError, Result};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A two-valued random-increment walk: step `up` with probability `p_up`,
/// otherwise step `down`.
#[derive(Debug, Clone)]
pub struct TwoPointWalk {
    up: f64,
    down: f64,
    p_up: f64,
    rng: ChaCha8Rng,
    position: f64,
    steps: u64,
}

impl TwoPointWalk {
    /// Creates the walk starting at 0.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] if `p_up ∉ [0, 1]` or the
    /// increments are not finite.
    pub fn new(up: f64, down: f64, p_up: f64, seed: u64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p_up) {
            return Err(AnalysisError::InvalidParameter {
                reason: format!("p_up must lie in [0, 1], got {p_up}"),
            });
        }
        if !up.is_finite() || !down.is_finite() {
            return Err(AnalysisError::InvalidParameter {
                reason: "increments must be finite".into(),
            });
        }
        Ok(TwoPointWalk {
            up,
            down,
            p_up,
            rng: ChaCha8Rng::seed_from_u64(seed),
            position: 0.0,
            steps: 0,
        })
    }

    /// The simple ±1 walk with fair steps.
    ///
    /// # Errors
    ///
    /// Never fails in practice (parameters are fixed and valid).
    pub fn simple(seed: u64) -> Result<Self> {
        Self::new(1.0, -1.0, 0.5, seed)
    }

    /// Current position.
    pub fn position(&self) -> f64 {
        self.position
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Expected increment per step.
    pub fn drift(&self) -> f64 {
        self.p_up * self.up + (1.0 - self.p_up) * self.down
    }

    /// Variance of a single increment.
    pub fn increment_variance(&self) -> f64 {
        let mean = self.drift();
        self.p_up * (self.up - mean).powi(2) + (1.0 - self.p_up) * (self.down - mean).powi(2)
    }

    /// Advances one step and returns the new position.
    pub fn step(&mut self) -> f64 {
        let increment = if self.rng.gen::<f64>() < self.p_up {
            self.up
        } else {
            self.down
        };
        self.position += increment;
        self.steps += 1;
        self.position
    }

    /// Generates the positions after steps `1..=k` (not including the start).
    pub fn sample_path(&mut self, k: usize) -> Vec<f64> {
        (0..k).map(|_| self.step()).collect()
    }
}

/// Running maximum of a trajectory (empty input gives `None`).
pub fn running_maximum(path: &[f64]) -> Option<f64> {
    path.iter().copied().reduce(f64::max)
}

/// First index (0-based) at which the path reaches or exceeds `level`, if any.
pub fn first_passage(path: &[f64], level: f64) -> Option<usize> {
    path.iter().position(|&x| x >= level)
}

/// Last index (0-based) at which the path is at or above `level`, if any.
///
/// This is the trajectory functional behind Definition 1 ("the last time the
/// variance was still above the threshold") and behind the proof's
/// requirement `∀T > t₀: W̃_T ≤ −2`.
pub fn last_exceedance(path: &[f64], level: f64) -> Option<usize> {
    path.iter().rposition(|&x| x >= level)
}

/// Fraction of `trials` independent simple-walk paths of length `k` whose
/// endpoint is at least `s·√k` — the empirical quantity Theorem 3 bounds.
pub fn simple_walk_tail_frequency(k: usize, s: f64, trials: usize, seed: u64) -> f64 {
    if trials == 0 || k == 0 {
        return 0.0;
    }
    let threshold = s * (k as f64).sqrt();
    let mut hits = 0usize;
    for t in 0..trials {
        let mut walk = TwoPointWalk::simple(seed.wrapping_add(t as u64)).expect("valid parameters");
        let mut position = 0.0;
        for _ in 0..k {
            position = walk.step();
        }
        if position >= threshold {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructor_validation() {
        assert!(TwoPointWalk::new(1.0, -1.0, 1.5, 1).is_err());
        assert!(TwoPointWalk::new(f64::NAN, -1.0, 0.5, 1).is_err());
        assert!(TwoPointWalk::new(1.0, f64::INFINITY, 0.5, 1).is_err());
        assert!(TwoPointWalk::simple(1).is_ok());
    }

    #[test]
    fn drift_and_variance() {
        let walk = TwoPointWalk::new(1.0, -1.5, 0.5, 1).unwrap();
        assert!((walk.drift() + 0.25).abs() < 1e-12);
        assert!((walk.increment_variance() - 1.5625).abs() < 1e-12);
        let simple = TwoPointWalk::simple(1).unwrap();
        assert_eq!(simple.drift(), 0.0);
        assert_eq!(simple.increment_variance(), 1.0);
    }

    #[test]
    fn steps_and_positions_consistent() {
        let mut walk = TwoPointWalk::simple(42).unwrap();
        assert_eq!(walk.position(), 0.0);
        assert_eq!(walk.steps(), 0);
        let path = walk.sample_path(100);
        assert_eq!(path.len(), 100);
        assert_eq!(walk.steps(), 100);
        assert_eq!(walk.position(), *path.last().unwrap());
        // Simple walk positions have the same parity as the step count.
        for (i, &x) in path.iter().enumerate() {
            assert!((x.abs() as usize) <= i + 1);
            assert_eq!(((i + 1) as i64 - x as i64) % 2, 0);
        }
    }

    #[test]
    fn reproducibility() {
        let a: Vec<f64> = TwoPointWalk::simple(7).unwrap().sample_path(50);
        let b: Vec<f64> = TwoPointWalk::simple(7).unwrap().sample_path(50);
        assert_eq!(a, b);
        let c: Vec<f64> = TwoPointWalk::simple(8).unwrap().sample_path(50);
        assert_ne!(a, c);
    }

    #[test]
    fn trajectory_functionals() {
        let path = [1.0, 3.0, 2.0, -1.0, 2.5, 0.0];
        assert_eq!(running_maximum(&path), Some(3.0));
        assert_eq!(first_passage(&path, 2.5), Some(1));
        assert_eq!(first_passage(&path, 10.0), None);
        assert_eq!(last_exceedance(&path, 2.5), Some(4));
        assert_eq!(last_exceedance(&path, 3.5), None);
        assert_eq!(running_maximum(&[]), None);
        assert_eq!(first_passage(&[], 0.0), None);
        assert_eq!(last_exceedance(&[], 0.0), None);
    }

    #[test]
    fn negative_drift_walk_goes_down_on_average() {
        // The dominating walk's shape: +x w.p. 1/2, −1.5x w.p. 1/2.
        let mut walk = TwoPointWalk::new(1.0, -1.5, 0.5, 3).unwrap();
        let k = 4000;
        let final_pos = *walk.sample_path(k).last().unwrap();
        let expected = k as f64 * (-0.25);
        let sd = (k as f64 * 1.5625).sqrt();
        assert!(
            (final_pos - expected).abs() < 5.0 * sd,
            "final position {final_pos} too far from drift prediction {expected}"
        );
        assert!(final_pos < 0.0);
    }

    #[test]
    fn tail_frequency_decreases_in_s_and_is_bounded() {
        let f1 = simple_walk_tail_frequency(100, 0.5, 400, 9);
        let f2 = simple_walk_tail_frequency(100, 1.5, 400, 9);
        let f3 = simple_walk_tail_frequency(100, 3.0, 400, 9);
        assert!((0.0..=1.0).contains(&f1));
        assert!(f1 >= f2);
        assert!(f2 >= f3);
        assert!(f3 <= 0.05);
        assert_eq!(simple_walk_tail_frequency(0, 1.0, 10, 1), 0.0);
        assert_eq!(simple_walk_tail_frequency(10, 1.0, 0, 1), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_path_increments_are_valid(seed in 0u64..200, up in 0.1f64..3.0, down in -3.0f64..-0.1) {
            let mut walk = TwoPointWalk::new(up, down, 0.5, seed).unwrap();
            let path = walk.sample_path(50);
            let mut previous = 0.0;
            for &x in &path {
                let inc = x - previous;
                prop_assert!((inc - up).abs() < 1e-12 || (inc - down).abs() < 1e-12);
                previous = x;
            }
        }
    }
}
