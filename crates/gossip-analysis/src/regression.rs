//! Least-squares fits used to summarize scaling behaviour.
//!
//! The experiments repeatedly ask questions of the form "does the measured
//! averaging time grow like `n` (Theorem 1) or like a polylogarithm
//! (Theorem 2)?".  The standard tool is a fit of `log y` against `log x`
//! (power laws appear as straight lines with slope = exponent) or against
//! `log log`-style predictors; [`LinearFit`] provides the underlying simple
//! linear regression with `R²`, and the convenience wrappers transform the
//! data first.

use crate::{AnalysisError, Result};
use serde::{Deserialize, Serialize};

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R² ∈ [0, 1]`.
    pub r_squared: f64,
    /// Number of points used.
    pub points: usize,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares fit of `y` on `x`.
///
/// # Errors
///
/// Returns [`AnalysisError::LengthMismatch`] for mismatched inputs,
/// [`AnalysisError::EmptySample`] if fewer than two points are supplied, and
/// [`AnalysisError::DegenerateFit`] if all `x` values coincide.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<LinearFit> {
    if x.len() != y.len() {
        return Err(AnalysisError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(AnalysisError::EmptySample);
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx <= 0.0 {
        return Err(AnalysisError::DegenerateFit);
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy <= 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(LinearFit {
        slope,
        intercept,
        r_squared,
        points: x.len(),
    })
}

/// Fits `log y ≈ slope·log x + intercept`: the slope is the empirical
/// power-law exponent of `y` in `x`.
///
/// # Errors
///
/// In addition to the [`linear_fit`] errors, returns
/// [`AnalysisError::InvalidParameter`] if any `x` or `y` is not strictly
/// positive.
pub fn log_log_fit(x: &[f64], y: &[f64]) -> Result<LinearFit> {
    let lx = logs(x)?;
    let ly = logs(y)?;
    linear_fit(&lx, &ly)
}

/// Fits `y ≈ slope·log x + intercept`, appropriate when `y` is expected to
/// grow logarithmically (or polylogarithmically with a further transform) in
/// `x`.
///
/// # Errors
///
/// See [`log_log_fit`]; only `x` must be strictly positive here.
pub fn semilog_fit(x: &[f64], y: &[f64]) -> Result<LinearFit> {
    let lx = logs(x)?;
    linear_fit(&lx, y)
}

fn logs(values: &[f64]) -> Result<Vec<f64>> {
    values
        .iter()
        .map(|&v| {
            if v > 0.0 && v.is_finite() {
                Ok(v.ln())
            } else {
                Err(AnalysisError::InvalidParameter {
                    reason: format!("logarithmic fit requires positive finite values, got {v}"),
                })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_is_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.0).collect();
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(fit.points, 4);
        assert!((fit.predict(10.0) - 29.0).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            linear_fit(&[1.0], &[1.0, 2.0]),
            Err(AnalysisError::LengthMismatch { .. })
        ));
        assert!(matches!(
            linear_fit(&[1.0], &[1.0]),
            Err(AnalysisError::EmptySample)
        ));
        assert!(matches!(
            linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(AnalysisError::DegenerateFit)
        ));
        assert!(log_log_fit(&[1.0, -2.0], &[1.0, 1.0]).is_err());
        assert!(log_log_fit(&[1.0, 2.0], &[0.0, 1.0]).is_err());
        assert!(semilog_fit(&[0.0, 2.0], &[0.0, 1.0]).is_err());
    }

    #[test]
    fn constant_y_has_r_squared_one_and_zero_slope() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn power_law_exponent_recovered_by_log_log_fit() {
        // y = 2 x^1.7
        let x: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v.powf(1.7)).collect();
        let fit = log_log_fit(&x, &y).unwrap();
        assert!((fit.slope - 1.7).abs() < 1e-9);
        assert!((fit.intercept - 2.0f64.ln()).abs() < 1e-9);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn logarithmic_growth_recovered_by_semilog_fit() {
        // y = 4 ln x + 3
        let x: Vec<f64> = (1..=20).map(|i| i as f64 * 2.0).collect();
        let y: Vec<f64> = x.iter().map(|v| 4.0 * v.ln() + 3.0).collect();
        let fit = semilog_fit(&x, &y).unwrap();
        assert!((fit.slope - 4.0).abs() < 1e-9);
        assert!((fit.intercept - 3.0).abs() < 1e-9);
    }

    #[test]
    fn linear_data_has_log_log_slope_near_one() {
        let x: Vec<f64> = (4..=64).step_by(4).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.5 * v + 3.0).collect();
        let fit = log_log_fit(&x, &y).unwrap();
        assert!(fit.slope > 0.7 && fit.slope < 1.1, "slope {}", fit.slope);
    }

    #[test]
    fn polylog_data_has_small_log_log_slope() {
        let x: Vec<f64> = (2..=10).map(|i| (1usize << i) as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.ln().powi(2)).collect();
        let fit = log_log_fit(&x, &y).unwrap();
        assert!(fit.slope < 0.6, "slope {}", fit.slope);
    }

    proptest! {
        #[test]
        fn prop_fit_residual_orthogonal_to_x(
            slope in -5.0f64..5.0,
            intercept in -5.0f64..5.0,
            noise_seed in 0u64..500,
        ) {
            let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
            let y: Vec<f64> = x
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let noise = (((i as u64 * 2654435761 + noise_seed) % 1000) as f64 / 1000.0) - 0.5;
                    slope * v + intercept + noise
                })
                .collect();
            let fit = linear_fit(&x, &y).unwrap();
            // Normal equations: residuals are orthogonal to x and sum to ~0.
            let residual_dot_x: f64 = x
                .iter()
                .zip(y.iter())
                .map(|(&xi, &yi)| (yi - fit.predict(xi)) * xi)
                .sum();
            let residual_sum: f64 = x
                .iter()
                .zip(y.iter())
                .map(|(&xi, &yi)| yi - fit.predict(xi))
                .sum();
            prop_assert!(residual_dot_x.abs() < 1e-6);
            prop_assert!(residual_sum.abs() < 1e-6);
            prop_assert!(fit.r_squared >= 0.0 && fit.r_squared <= 1.0 + 1e-12);
        }
    }
}
