//! Fixed-width histograms and empirical distribution functions.
//!
//! Used by the experiment harness to summarize settling-time distributions
//! and to compare empirical tail frequencies against the closed-form bounds
//! in [`crate::concentration`].

use crate::{AnalysisError, Result};
use serde::{Deserialize, Serialize};

/// A fixed-width histogram over `[lo, hi)` with values outside the range
/// clamped into the first/last bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] if `bins == 0`,
    /// `lo >= hi`, or the bounds are not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(AnalysisError::InvalidParameter {
                reason: "histogram requires at least one bin".into(),
            });
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(AnalysisError::InvalidParameter {
                reason: format!("invalid histogram range [{lo}, {hi})"),
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Creates a histogram spanning the sample's range and fills it.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::EmptySample`] for an empty sample and
    /// [`AnalysisError::InvalidParameter`] for NaN data or `bins == 0`.
    pub fn of(sample: &[f64], bins: usize) -> Result<Self> {
        if sample.is_empty() {
            return Err(AnalysisError::EmptySample);
        }
        if sample.iter().any(|x| !x.is_finite()) {
            return Err(AnalysisError::InvalidParameter {
                reason: "sample contains non-finite values".into(),
            });
        }
        let lo = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Widen a degenerate range so all mass falls in one bin.
        let hi = if hi > lo { hi } else { lo + 1.0 };
        let mut histogram = Histogram::new(lo, hi + (hi - lo) * 1e-9, bins)?;
        for &x in sample {
            histogram.add(x);
        }
        Ok(histogram)
    }

    /// Adds one observation (clamped into the outermost bins if outside the
    /// range).
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        let index = if value < self.lo {
            0
        } else {
            (((value - self.lo) / width) as usize).min(bins - 1)
        };
        self.counts[index] += 1;
        self.total += 1;
    }

    /// Number of observations added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(bin_center, count)` pairs, the series a plot wants.
    pub fn centers_and_counts(&self) -> Vec<(f64, u64)> {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
            .collect()
    }

    /// Fraction of observations at or above `value` (the empirical survival
    /// function, computed at bin granularity by attributing each bin to its
    /// lower edge).
    pub fn survival(&self, value: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        let mut above = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            let lower_edge = self.lo + i as f64 * width;
            if lower_edge >= value {
                above += count;
            }
        }
        above as f64 / self.total as f64
    }
}

/// Empirical cumulative distribution function `P[X ≤ x]` of a sample.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptySample`] for an empty sample.
pub fn empirical_cdf(sample: &[f64], x: f64) -> Result<f64> {
    if sample.is_empty() {
        return Err(AnalysisError::EmptySample);
    }
    let count = sample.iter().filter(|&&v| v <= x).count();
    Ok(count as f64 / sample.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 4).is_ok());
        assert!(Histogram::of(&[], 4).is_err());
        assert!(Histogram::of(&[1.0, f64::NAN], 4).is_err());
    }

    #[test]
    fn counts_and_centers() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for v in [0.5, 1.5, 2.5, 2.6, 9.9, -3.0, 42.0] {
            h.add(v);
        }
        assert_eq!(h.total(), 7);
        // Bins: [0,2): 0.5, 1.5, -3 (clamped) => 3; [2,4): 2.5, 2.6 => 2;
        // [8,10): 9.9, 42 (clamped) => 2.
        assert_eq!(h.counts(), &[3, 2, 0, 0, 2]);
        let centers: Vec<f64> = h.centers_and_counts().iter().map(|(c, _)| *c).collect();
        assert_eq!(centers, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn of_sample_and_survival() {
        let sample = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let h = Histogram::of(&sample, 4).unwrap();
        assert_eq!(h.total(), 8);
        assert_eq!(h.counts().iter().sum::<u64>(), 8);
        // Half of the observations lie in bins whose lower edge is ≥ median.
        let surv = h.survival(4.5);
        assert!((surv - 0.5).abs() < 0.26);
        assert_eq!(h.survival(f64::NEG_INFINITY), 1.0);
        assert_eq!(h.survival(f64::INFINITY), 0.0);
        // Degenerate (constant) sample still works.
        let constant = Histogram::of(&[2.0, 2.0, 2.0], 3).unwrap();
        assert_eq!(constant.total(), 3);
    }

    #[test]
    fn empirical_cdf_basic() {
        let sample = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(empirical_cdf(&sample, 0.0).unwrap(), 0.0);
        assert_eq!(empirical_cdf(&sample, 2.0).unwrap(), 0.5);
        assert_eq!(empirical_cdf(&sample, 10.0).unwrap(), 1.0);
        assert!(empirical_cdf(&[], 1.0).is_err());
    }

    proptest! {
        #[test]
        fn prop_total_matches_sample_size(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..200),
            bins in 1usize..20,
        ) {
            let h = Histogram::of(&xs, bins).unwrap();
            prop_assert_eq!(h.total(), xs.len() as u64);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), xs.len() as u64);
        }

        #[test]
        fn prop_cdf_monotone(xs in proptest::collection::vec(-1e2f64..1e2, 1..100)) {
            let a = empirical_cdf(&xs, -50.0).unwrap();
            let b = empirical_cdf(&xs, 0.0).unwrap();
            let c = empirical_cdf(&xs, 50.0).unwrap();
            prop_assert!(a <= b + 1e-12);
            prop_assert!(b <= c + 1e-12);
        }
    }
}
