//! Statistical analysis utilities for the sparse-cut gossip experiments.
//!
//! The crate is deliberately self-contained (no dependency on the graph or
//! simulation crates) so that it can be tested in isolation and reused by the
//! benchmark harness:
//!
//! * [`stats`] — descriptive statistics, quantiles, confidence intervals.
//! * [`regression`] — least-squares fits, including the log–log slope fits
//!   used to estimate empirical scaling exponents (is the averaging time
//!   growing like `n` or like `log² n`?).
//! * [`random_walk`] — simple and lazy random walks on the line, used to
//!   reproduce the Theorem 3 tail behaviour and the drift calculation for
//!   the dominating walk `W̃`.
//! * [`dominance`] — the stochastic-dominance coupling at the heart of the
//!   paper's Section 3: the observed per-epoch log-contractions `log‖A_k‖`
//!   are dominated by a lazy `±log n` walk with negative drift.
//! * [`concentration`] — Hoeffding/Chernoff-style tail bounds (the paper's
//!   Theorem 3) and empirical tail frequencies to compare against them.
//! * [`robust`] — outlier-resistant estimators (trimmed mean, MAD) and the
//!   honest-subset drift oracles used by the adversary benchmark tier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concentration;
pub mod dominance;
pub mod histogram;
pub mod random_walk;
pub mod regression;
pub mod robust;
pub mod stats;

pub use dominance::DominatingWalk;
pub use regression::LinearFit;
pub use robust::{honest_drift_bound, hull_drift_bound, median_absolute_deviation, trimmed_mean};
pub use stats::{SortedSample, Summary};

use std::error::Error;
use std::fmt;

/// Errors produced by the analysis routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// An empty sample was supplied where data is required.
    EmptySample,
    /// Samples of mismatched lengths were supplied to a paired routine.
    LengthMismatch {
        /// Length of the first sample.
        left: usize,
        /// Length of the second sample.
        right: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Human-readable description.
        reason: String,
    },
    /// The data are degenerate for the requested fit (e.g. zero variance in
    /// the predictor).
    DegenerateFit,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::EmptySample => write!(f, "empty sample"),
            AnalysisError::LengthMismatch { left, right } => {
                write!(f, "sample length mismatch: {left} vs {right}")
            }
            AnalysisError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
            AnalysisError::DegenerateFit => write!(f, "degenerate data for the requested fit"),
        }
    }
}

impl Error for AnalysisError {}

/// Convenient result alias for analysis routines.
pub type Result<T> = std::result::Result<T, AnalysisError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errors = [
            AnalysisError::EmptySample,
            AnalysisError::LengthMismatch { left: 1, right: 2 },
            AnalysisError::InvalidParameter {
                reason: "bad".into(),
            },
            AnalysisError::DegenerateFit,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisError>();
    }
}
