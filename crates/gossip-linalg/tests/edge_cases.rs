//! Edge-case tests for the eigen/matrix substrate: empty, 1×1, and
//! symmetric-vs-asymmetric inputs.
//!
//! The spectral bounds in `gossip-core/src/bounds.rs` (`t_van_spectral`,
//! `BoundsSummary`) call straight into this crate and silently assume these
//! behaviours: a 0×0 matrix is rejected rather than decomposed, a 1×1
//! matrix has exactly one eigenpair, and asymmetric input is refused
//! instead of producing a garbage spectrum.  Pin them here so a future
//! eigensolver swap cannot change the contract unnoticed.

use gossip_linalg::{LinalgError, Matrix, PowerIteration, SymmetricEigen, Vector};

// --- empty input ----------------------------------------------------------

#[test]
fn eigen_rejects_empty_matrix() {
    let empty = Matrix::zeros(0, 0);
    assert!(matches!(
        SymmetricEigen::compute(&empty),
        Err(LinalgError::Empty)
    ));
}

#[test]
fn power_iteration_rejects_empty_matrix() {
    let empty = Matrix::zeros(0, 0);
    assert!(matches!(
        PowerIteration::new().run(&empty),
        Err(LinalgError::Empty)
    ));
}

#[test]
fn from_rows_rejects_empty_and_ragged_input() {
    assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::Empty)));
    assert!(matches!(
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]),
        Err(LinalgError::RaggedRows)
    ));
}

#[test]
fn empty_vector_statistics_are_well_defined() {
    let v = Vector::zeros(0);
    assert!(v.is_empty());
    assert_eq!(v.sum(), 0.0);
    assert_eq!(v.min(), None);
    assert_eq!(v.max(), None);
    assert_eq!(v.norm(), 0.0);
}

// --- 1×1 input ------------------------------------------------------------

#[test]
fn eigen_of_one_by_one_matrix_is_the_entry() {
    let m = Matrix::from_rows(&[vec![-3.5]]).unwrap();
    let eig = SymmetricEigen::compute(&m).unwrap();
    assert_eq!(eig.eigenvalues().len(), 1);
    assert!((eig.eigenvalues()[0] - (-3.5)).abs() < 1e-12);
    assert_eq!(eig.eigenvectors().len(), 1);
    assert!((eig.eigenvectors()[0].norm() - 1.0).abs() < 1e-12);
    assert!((eig.smallest() - eig.largest()).abs() < 1e-12);
    // There is no second-smallest eigenvalue of a 1×1 matrix.
    assert!(matches!(eig.second_smallest(), Err(LinalgError::Empty)));
    assert!(matches!(
        eig.second_smallest_eigenvector(),
        Err(LinalgError::Empty)
    ));
}

#[test]
fn power_iteration_on_one_by_one_matrix() {
    let m = Matrix::from_rows(&[vec![4.0]]).unwrap();
    let result = PowerIteration::new().run(&m).unwrap();
    assert!((result.eigenvalue - 4.0).abs() < 1e-9);
}

#[test]
fn one_by_one_matrix_helpers_are_consistent() {
    let m = Matrix::from_rows(&[vec![2.0]]).unwrap();
    assert!(m.is_square());
    assert!(m.is_symmetric(0.0));
    assert_eq!(m.trace().unwrap(), 2.0);
    assert_eq!(m.frobenius_norm(), 2.0);
    assert_eq!(m.off_diagonal_abs_sum(), 0.0);
    assert_eq!(m.transpose().get(0, 0), 2.0);
}

// --- symmetric vs. asymmetric input --------------------------------------

#[test]
fn eigen_rejects_asymmetric_matrix() {
    let asym = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
    assert!(matches!(
        SymmetricEigen::compute(&asym),
        Err(LinalgError::NotSymmetric)
    ));
}

#[test]
fn eigen_rejects_non_square_matrix() {
    let rect = Matrix::zeros(2, 3);
    assert!(matches!(
        SymmetricEigen::compute(&rect),
        Err(LinalgError::NotSquare { rows: 2, cols: 3 })
    ));
}

#[test]
fn symmetry_check_tolerance_is_respected() {
    // Off-symmetric by 1e-9: rejected at tol 0, accepted at tol 1e-6.
    let nearly = Matrix::from_rows(&[vec![1.0, 1.0 + 1e-9], vec![1.0, 1.0]]).unwrap();
    assert!(!nearly.is_symmetric(0.0));
    assert!(nearly.is_symmetric(1e-6));
}

#[test]
fn symmetric_eigen_reconstructs_the_matrix() {
    // A·v = λ·v for every pair, and Σλ = trace — on a matrix with known
    // distinct eigenvalues {1, 3} (the 2×2 [[2,1],[1,2]]).
    let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
    let eig = SymmetricEigen::compute(&m).unwrap();
    assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-9);
    assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-9);
    for (lambda, v) in eig.eigenvalues().iter().zip(eig.eigenvectors()) {
        let av = m.matvec(v).unwrap();
        let mut scaled = v.clone();
        scaled.scale_in_place(*lambda);
        assert!(av.distance(&scaled).unwrap() < 1e-9);
    }
    let trace_sum: f64 = eig.eigenvalues().iter().sum();
    assert!((trace_sum - m.trace().unwrap()).abs() < 1e-9);
}

#[test]
fn asymmetric_matrix_still_supports_non_spectral_operations() {
    // transpose/matmul/matvec must not require symmetry.
    let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 0.0]]).unwrap();
    let at = a.transpose();
    assert_eq!(at.get(1, 0), 1.0);
    let product = a.matmul(&at).unwrap();
    assert_eq!(product.get(0, 0), 1.0);
    assert_eq!(product.get(1, 1), 0.0);
    let x = Vector::from(vec![2.0, 5.0]);
    let ax = a.matvec(&x).unwrap();
    assert_eq!(ax.as_slice(), &[5.0, 0.0]);
}
