//! Dense, row-major matrices.
//!
//! The matrices manipulated in this workspace are graph Laplacians, gossip
//! expectation matrices `W`, and the epoch operators `A_k` from the paper's
//! Section 3.  They are small (n up to a few thousand) and dense storage with
//! straightforward `O(n²)`/`O(n³)` kernels is more than fast enough.

use crate::{LinalgError, Result, Vector, DEFAULT_TOLERANCE};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Largest `max(rows, cols)` ever passed to a dense [`Matrix`] constructor in
/// this process.  The scale-tier tests use this to prove that large-graph
/// code paths never materialize an O(n²) dense matrix.
static LARGEST_DENSE_DIMENSION: AtomicUsize = AtomicUsize::new(0);

fn note_dense_alloc(rows: usize, cols: usize) {
    LARGEST_DENSE_DIMENSION.fetch_max(rows.max(cols), Ordering::Relaxed);
}

/// The largest `max(rows, cols)` any dense [`Matrix`] constructor has seen
/// since the process started (or since [`reset_largest_dense_dimension`]).
///
/// This is a process-global, monotone diagnostic: the workspace's scale-tier
/// tests assert that running the sparse spectral pipeline on a large graph
/// leaves it below the dense/sparse dispatch threshold.
pub fn largest_dense_dimension() -> usize {
    LARGEST_DENSE_DIMENSION.load(Ordering::Relaxed)
}

/// Resets the [`largest_dense_dimension`] tracker to zero.  Intended for
/// tests that want a clean baseline; note the counter is process-global, so
/// concurrently running tests in the same binary also feed it.
pub fn reset_largest_dense_dimension() {
    LARGEST_DENSE_DIMENSION.store(0, Ordering::Relaxed);
}

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use gossip_linalg::{Matrix, Vector};
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let x = Vector::from(vec![1.0, 1.0]);
/// let y = a.matvec(&x)?;
/// assert_eq!(y.as_slice(), &[3.0, 7.0]);
/// # Ok::<(), gossip_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        note_dense_alloc(rows, cols);
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if no rows are given and
    /// [`LinalgError::RaggedRows`] if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::RaggedRows);
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        note_dense_alloc(rows.len(), cols);
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Creates a matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Reads the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        self.data[i * self.cols + j]
    }

    /// Writes the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        self.data[i * self.cols + j] = value;
    }

    /// Adds `value` to the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        self.data[i * self.cols + j] += value;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as a freshly allocated [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn column(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column index out of range");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        let xs = x.as_slice();
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let acc: f64 = self.row(i).iter().zip(xs).map(|(a, b)| a * b).sum();
            out.push(acc);
        }
        Ok(Vector::from(out))
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.add_to(i, j, aik * other.get(k, j));
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if the matrix is not square.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).sum())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Sum of the absolute values of the off-diagonal entries.  Used as the
    /// convergence criterion of the Jacobi eigensolver.
    pub fn off_diagonal_abs_sum(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, v)| v.abs())
                    .sum::<f64>()
            })
            .sum()
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if every row sums to `target` within `tol`.
    ///
    /// Gossip expectation matrices are doubly stochastic (row sums 1) and
    /// Laplacians have zero row sums; this helper checks both.
    pub fn rows_sum_to(&self, target: f64, tol: f64) -> bool {
        (0..self.rows).all(|i| (self.row(i).iter().sum::<f64>() - target).abs() <= tol)
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }

    /// Quadratic form `xᵀ·A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if dimensions disagree.
    pub fn quadratic_form(&self, x: &Vector) -> Result<f64> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.rows,
                actual: x.len(),
            });
        }
        let xs = x.as_slice();
        let mut total = 0.0;
        for i in 0..self.rows {
            let row_dot: f64 = self.row(i).iter().zip(xs).map(|(a, b)| a * b).sum();
            total += xs[i] * row_dot;
        }
        Ok(total)
    }

    /// Checks symmetry with the crate default tolerance and returns an error
    /// when the check fails.  Used by routines that require symmetric input.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::NotSymmetric`].
    pub fn require_symmetric(&self) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if !self.is_symmetric(DEFAULT_TOLERANCE.max(1e-9 * self.frobenius_norm())) {
            return Err(LinalgError::NotSymmetric);
        }
        Ok(())
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix addition shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix subtraction shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(!z.is_square());
        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert!(close(i.trace().unwrap(), 3.0));
    }

    #[test]
    fn from_rows_validation() {
        assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::Empty)));
        assert!(matches!(
            Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(LinalgError::RaggedRows)
        ));
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert!(close(m.get(1, 0), 3.0));
    }

    #[test]
    fn from_diagonal_and_from_fn() {
        let d = Matrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert!(close(d.trace().unwrap(), 6.0));
        assert!(close(d.get(0, 1), 0.0));
        let f = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        assert!(close(f.get(1, 1), 2.0));
    }

    #[test]
    fn matvec_and_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let x = Vector::from(vec![1.0, -1.0]);
        assert_eq!(a.matvec(&x).unwrap().as_slice(), &[-1.0, -1.0]);

        let b = Matrix::identity(2);
        assert_eq!(a.matmul(&b).unwrap(), a);

        let c = a.matmul(&a).unwrap();
        assert!(close(c.get(0, 0), 7.0));
        assert!(close(c.get(0, 1), 10.0));
        assert!(close(c.get(1, 0), 15.0));
        assert!(close(c.get(1, 1), 22.0));
    }

    #[test]
    fn matvec_dimension_mismatch() {
        let a = Matrix::zeros(2, 2);
        assert!(a.matvec(&Vector::zeros(3)).is_err());
        let b = Matrix::zeros(3, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), a);
        assert!(close(t.get(2, 1), 6.0));
    }

    #[test]
    fn trace_requires_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.trace(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn symmetry_checks() {
        let s = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        assert!(s.require_symmetric().is_ok());
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 2.0]]).unwrap();
        assert!(!a.is_symmetric(1e-12));
        assert!(matches!(
            a.require_symmetric(),
            Err(LinalgError::NotSymmetric)
        ));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn row_sums() {
        let w = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.25, 0.75]]).unwrap();
        assert!(w.rows_sum_to(1.0, 1e-12));
        assert!(!w.rows_sum_to(0.0, 1e-12));
    }

    #[test]
    fn quadratic_form_laplacian() {
        // Path Laplacian quadratic form equals sum of squared edge differences.
        let lap = Matrix::from_rows(&[
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 1.0],
        ])
        .unwrap();
        let x = Vector::from(vec![1.0, 3.0, 0.0]);
        let expected = (1.0_f64 - 3.0).powi(2) + (3.0_f64 - 0.0).powi(2);
        assert!(close(lap.quadratic_form(&x).unwrap(), expected));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let sum = &a + &b;
        assert!(close(sum.get(0, 1), 1.0));
        assert!(close(sum.get(0, 0), 1.0));
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let scaled = &a * 3.0;
        assert!(close(scaled.trace().unwrap(), 6.0));
    }

    #[test]
    fn display_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }

    #[test]
    fn off_diagonal_abs_sum_counts_only_off_diagonal() {
        let a = Matrix::from_rows(&[vec![5.0, -2.0], vec![3.0, 7.0]]).unwrap();
        assert!(close(a.off_diagonal_abs_sum(), 5.0));
    }

    proptest! {
        #[test]
        fn prop_transpose_preserves_frobenius(
            rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000
        ) {
            let m = Matrix::from_fn(rows, cols, |i, j| {
                ((i * 31 + j * 17 + seed as usize) % 13) as f64 - 6.0
            });
            prop_assert!((m.frobenius_norm() - m.transpose().frobenius_norm()).abs() < 1e-9);
        }

        #[test]
        fn prop_identity_is_matmul_neutral(n in 1usize..6, seed in 0u64..1000) {
            let m = Matrix::from_fn(n, n, |i, j| {
                ((i * 7 + j * 13 + seed as usize) % 11) as f64 - 5.0
            });
            let id = Matrix::identity(n);
            prop_assert_eq!(m.matmul(&id).unwrap(), m.clone());
            prop_assert_eq!(id.matmul(&m).unwrap(), m);
        }

        #[test]
        fn prop_matvec_linear(n in 1usize..6, a in -3.0f64..3.0, seed in 0u64..1000) {
            let m = Matrix::from_fn(n, n, |i, j| ((i + 2 * j + seed as usize) % 7) as f64);
            let x = Vector::from((0..n).map(|i| i as f64 + 1.0).collect::<Vec<_>>());
            let lhs = m.matvec(&x.scaled(a)).unwrap();
            let rhs = m.matvec(&x).unwrap().scaled(a);
            prop_assert!(lhs.distance(&rhs).unwrap() < 1e-8);
        }
    }
}
