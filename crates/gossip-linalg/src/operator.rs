//! Matrix-free linear operators.
//!
//! The iterative eigensolvers in this crate ([`crate::PowerIteration`],
//! [`crate::Lanczos`]) only ever touch a matrix through products `A·x`.
//! [`LinearOperator`] captures exactly that interface, so the same solver
//! runs against a dense [`crate::Matrix`], a sparse [`crate::CsrMatrix`], or
//! any caller-supplied operator that never materializes a matrix at all —
//! which is what makes the large-`n` spectral pipeline O(nnz) instead of
//! O(n²).

use crate::{Result, Vector};

/// A square linear operator `x ↦ A·x` of a fixed dimension.
///
/// Implementations must be deterministic: the iterative solvers in this
/// workspace are part of a bit-reproducible experiment harness.
///
/// # Examples
///
/// ```
/// use gossip_linalg::{LinearOperator, Matrix, Vector};
///
/// let a = Matrix::identity(3);
/// let x = Vector::ones(3);
/// assert_eq!(a.apply(&x)?.as_slice(), &[1.0, 1.0, 1.0]);
/// assert_eq!(LinearOperator::dim(&a), 3);
/// # Ok::<(), gossip_linalg::LinalgError>(())
/// ```
pub trait LinearOperator {
    /// Dimension `n` of the operator's domain and codomain.
    fn dim(&self) -> usize;

    /// Computes `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::LinalgError::DimensionMismatch`] if `x.len()` differs
    /// from [`LinearOperator::dim`].
    fn apply(&self, x: &Vector) -> Result<Vector>;
}

impl LinearOperator for crate::Matrix {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn apply(&self, x: &Vector) -> Result<Vector> {
        self.matvec(x)
    }
}

impl LinearOperator for crate::CsrMatrix {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn apply(&self, x: &Vector) -> Result<Vector> {
        self.matvec(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CsrMatrix, Matrix};

    #[test]
    fn dense_and_sparse_operators_agree() {
        let dense = Matrix::from_rows(&[vec![2.0, -1.0], vec![-1.0, 2.0]]).unwrap();
        let sparse = CsrMatrix::from_dense(&dense);
        let x = Vector::from(vec![1.0, 3.0]);
        let yd = dense.apply(&x).unwrap();
        let ys = sparse.apply(&x).unwrap();
        assert_eq!(yd, ys);
        assert_eq!(LinearOperator::dim(&dense), LinearOperator::dim(&sparse));
    }

    #[test]
    fn operator_dimension_mismatch_propagates() {
        let dense = Matrix::identity(3);
        assert!(dense.apply(&Vector::zeros(2)).is_err());
        let sparse = CsrMatrix::identity(3);
        assert!(sparse.apply(&Vector::zeros(2)).is_err());
    }
}
