//! Eigenvalue computations for symmetric matrices.
//!
//! Two tools are provided:
//!
//! * [`SymmetricEigen`] — the cyclic Jacobi rotation algorithm, which computes
//!   the full spectrum and eigenvectors of a symmetric matrix.  Laplacians of
//!   the graphs in this workspace are small enough that the `O(n³)` sweep cost
//!   is irrelevant, and Jacobi is simple, robust, and accurate.
//! * [`PowerIteration`] — power iteration with optional projection, used to
//!   estimate dominant eigenvalues and operator norms without forming the full
//!   spectrum.
//!
//! The second-smallest Laplacian eigenvalue (the algebraic connectivity) and
//! its eigenvector (the Fiedler vector) drive both spectral bisection in
//! `gossip-graph` and the spectral estimate of the vanilla averaging time in
//! `gossip-core`.

use crate::{LinalgError, LinearOperator, Matrix, Result, Vector};

/// Full eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
///
/// # Examples
///
/// ```
/// use gossip_linalg::{Matrix, SymmetricEigen};
///
/// let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]])?;
/// let eig = SymmetricEigen::compute(&m)?;
/// assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-9);
/// assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-9);
/// # Ok::<(), gossip_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: Vec<Vector>,
}

impl SymmetricEigen {
    /// Maximum number of Jacobi sweeps before giving up.
    const MAX_SWEEPS: usize = 100;

    /// Computes the eigendecomposition of a symmetric matrix.
    ///
    /// Eigenvalues are returned in ascending order, with eigenvectors in the
    /// corresponding order; each eigenvector has unit Euclidean norm.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] / [`LinalgError::NotSymmetric`] for
    /// invalid input, [`LinalgError::Empty`] for a 0×0 matrix, and
    /// [`LinalgError::NoConvergence`] if the off-diagonal mass does not vanish
    /// within the sweep budget (which does not happen for well-formed
    /// symmetric matrices).
    pub fn compute(matrix: &Matrix) -> Result<Self> {
        matrix.require_symmetric()?;
        let n = matrix.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }

        let mut a = matrix.clone();
        let mut v = Matrix::identity(n);
        let scale = matrix.frobenius_norm().max(1.0);
        let tol = 1e-12 * scale;

        let mut converged = false;
        for _sweep in 0..Self::MAX_SWEEPS {
            if a.off_diagonal_abs_sum() <= tol {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq.abs() <= tol / (n * n) as f64 {
                        continue;
                    }
                    let app = a.get(p, p);
                    let aqq = a.get(q, q);
                    let theta = (aqq - app) / (2.0 * apq);
                    // Stable computation of tan of the rotation angle.
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Apply the rotation A <- Jᵀ A J on rows/cols p and q.
                    for k in 0..n {
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }
                    for k in 0..n {
                        let apk = a.get(p, k);
                        let aqk = a.get(q, k);
                        a.set(p, k, c * apk - s * aqk);
                        a.set(q, k, s * apk + c * aqk);
                    }
                    // Accumulate eigenvectors: V <- V J.
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }
        if !converged && a.off_diagonal_abs_sum() > tol {
            return Err(LinalgError::NoConvergence {
                iterations: Self::MAX_SWEEPS,
            });
        }

        let mut pairs: Vec<(f64, Vector)> = (0..n).map(|i| (a.get(i, i), v.column(i))).collect();
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("eigenvalues are finite"));
        let (eigenvalues, eigenvectors): (Vec<f64>, Vec<Vector>) = pairs.into_iter().unzip();
        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues in ascending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Unit-norm eigenvectors, ordered to match [`Self::eigenvalues`].
    pub fn eigenvectors(&self) -> &[Vector] {
        &self.eigenvectors
    }

    /// The smallest eigenvalue.
    pub fn smallest(&self) -> f64 {
        self.eigenvalues[0]
    }

    /// The largest eigenvalue.
    pub fn largest(&self) -> f64 {
        *self
            .eigenvalues
            .last()
            .expect("decomposition is never empty")
    }

    /// The second-smallest eigenvalue.
    ///
    /// For a graph Laplacian this is the algebraic connectivity `λ₂`, which
    /// governs the vanilla gossip averaging time.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if the matrix was 1×1.
    pub fn second_smallest(&self) -> Result<f64> {
        self.eigenvalues.get(1).copied().ok_or(LinalgError::Empty)
    }

    /// The eigenvector associated with the second-smallest eigenvalue (the
    /// Fiedler vector for a Laplacian).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if the matrix was 1×1.
    pub fn second_smallest_eigenvector(&self) -> Result<&Vector> {
        self.eigenvectors.get(1).ok_or(LinalgError::Empty)
    }

    /// The ratio `λ_max / λ₂`, meaningful for Laplacians.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if the matrix was 1×1.
    pub fn condition_like_ratio(&self) -> Result<f64> {
        Ok(self.largest() / self.second_smallest()?)
    }
}

/// Power iteration for estimating dominant eigenvalues and operator norms.
///
/// # Examples
///
/// ```
/// use gossip_linalg::{Matrix, PowerIteration};
///
/// let m = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 1.0]])?;
/// let result = PowerIteration::new().run(&m)?;
/// assert!((result.eigenvalue - 2.0).abs() < 1e-6);
/// # Ok::<(), gossip_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PowerIteration {
    max_iterations: usize,
    tolerance: f64,
    deflate: Vec<Vector>,
}

/// Outcome of a [`PowerIteration`] run.
#[derive(Debug, Clone)]
pub struct PowerIterationResult {
    /// The estimated dominant eigenvalue (Rayleigh quotient at the last iterate).
    pub eigenvalue: f64,
    /// The associated unit-norm eigenvector estimate.
    pub eigenvector: Vector,
    /// Number of iterations actually performed.
    pub iterations: usize,
}

impl Default for PowerIteration {
    fn default() -> Self {
        Self::new()
    }
}

impl PowerIteration {
    /// Creates a power iteration with default settings (1000 iterations,
    /// tolerance `1e-12`).
    pub fn new() -> Self {
        PowerIteration {
            max_iterations: 1000,
            tolerance: 1e-12,
            deflate: Vec::new(),
        }
    }

    /// Sets the maximum number of iterations.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the convergence tolerance on successive eigenvalue estimates.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Adds a direction that will be projected out at every step.
    ///
    /// Projecting out the all-ones vector lets power iteration on `I − L/d`
    /// style matrices find the second eigenvalue directly.
    pub fn with_deflation(mut self, direction: Vector) -> Self {
        self.deflate.push(direction);
        self
    }

    /// Runs the iteration on a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for a non-square matrix,
    /// [`LinalgError::Empty`] for a 0×0 matrix, and
    /// [`LinalgError::NoConvergence`] if the eigenvalue estimate has not
    /// stabilized within the iteration budget.
    pub fn run(&self, matrix: &Matrix) -> Result<PowerIterationResult> {
        if !matrix.is_square() {
            return Err(LinalgError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }
        self.run_op(matrix)
    }

    /// Runs the iteration matrix-free on any symmetric [`LinearOperator`]
    /// (dense, CSR, or caller-supplied): one operator application per step,
    /// O(nnz) for sparse matrices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for a 0-dimensional operator and
    /// [`LinalgError::NoConvergence`] if the eigenvalue estimate has not
    /// stabilized within the iteration budget.
    pub fn run_op<O: LinearOperator + ?Sized>(&self, op: &O) -> Result<PowerIterationResult> {
        let n = op.dim();
        if n == 0 {
            return Err(LinalgError::Empty);
        }

        // Deterministic, well-spread starting vector.
        let mut x: Vector = (0..n).map(|i| 1.0 + ((i as f64) * 0.7511).sin()).collect();
        x = self.deflated(&x)?;
        if x.norm() == 0.0 {
            x = Vector::basis(n, 0);
            x = self.deflated(&x)?;
        }
        let mut x = x.normalized().unwrap_or_else(|_| Vector::basis(n, 0));

        let mut previous = f64::INFINITY;
        for iteration in 1..=self.max_iterations {
            let mut y = op.apply(&x)?;
            y = self.deflated(&y)?;
            // `x` is a unit vector inside the deflated subspace, so this is
            // the Rayleigh quotient xᵀAx at `x` — no second operator
            // application needed.
            let rayleigh = x.dot(&y)?;
            let norm = y.norm();
            if norm == 0.0 {
                // The operator annihilates the deflated subspace: dominant
                // eigenvalue there is exactly zero.
                return Ok(PowerIterationResult {
                    eigenvalue: 0.0,
                    eigenvector: x,
                    iterations: iteration,
                });
            }
            if (rayleigh - previous).abs() <= self.tolerance * rayleigh.abs().max(1.0) {
                // Return the iterate the Rayleigh quotient was evaluated at,
                // so the (eigenvalue, eigenvector) pair is consistent.
                return Ok(PowerIterationResult {
                    eigenvalue: rayleigh,
                    eigenvector: x,
                    iterations: iteration,
                });
            }
            previous = rayleigh;
            x = y.scaled(1.0 / norm);
        }
        Err(LinalgError::NoConvergence {
            iterations: self.max_iterations,
        })
    }

    fn deflated(&self, x: &Vector) -> Result<Vector> {
        let mut out = x.clone();
        for d in &self.deflate {
            if d.norm_squared() > 0.0 {
                out = out.project_out(d)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    fn path_laplacian(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                let mut d = 0.0;
                if i > 0 {
                    d += 1.0;
                }
                if i + 1 < n {
                    d += 1.0;
                }
                d
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        })
    }

    fn complete_laplacian(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| if i == j { (n - 1) as f64 } else { -1.0 })
    }

    #[test]
    fn jacobi_two_by_two() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = SymmetricEigen::compute(&m).unwrap();
        assert!(close(eig.eigenvalues()[0], 1.0, 1e-9));
        assert!(close(eig.eigenvalues()[1], 3.0, 1e-9));
        assert!(close(eig.smallest(), 1.0, 1e-9));
        assert!(close(eig.largest(), 3.0, 1e-9));
    }

    #[test]
    fn jacobi_rejects_nonsymmetric() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(SymmetricEigen::compute(&m).is_err());
    }

    #[test]
    fn jacobi_rejects_nonsquare() {
        let m = Matrix::zeros(2, 3);
        assert!(SymmetricEigen::compute(&m).is_err());
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let m = Matrix::from_diagonal(&[3.0, -1.0, 2.0]);
        let eig = SymmetricEigen::compute(&m).unwrap();
        assert!(close(eig.eigenvalues()[0], -1.0, 1e-10));
        assert!(close(eig.eigenvalues()[1], 2.0, 1e-10));
        assert!(close(eig.eigenvalues()[2], 3.0, 1e-10));
    }

    #[test]
    fn complete_graph_laplacian_spectrum() {
        // K_n Laplacian has eigenvalues 0 and n (with multiplicity n-1).
        let n = 6;
        let eig = SymmetricEigen::compute(&complete_laplacian(n)).unwrap();
        assert!(close(eig.smallest(), 0.0, 1e-8));
        assert!(close(eig.second_smallest().unwrap(), n as f64, 1e-8));
        assert!(close(eig.largest(), n as f64, 1e-8));
    }

    #[test]
    fn path_laplacian_second_eigenvalue_matches_formula() {
        // λ₂ of the path P_n Laplacian is 2(1 − cos(π/n)).
        let n = 8;
        let eig = SymmetricEigen::compute(&path_laplacian(n)).unwrap();
        let expected = 2.0 * (1.0 - (std::f64::consts::PI / n as f64).cos());
        assert!(close(eig.second_smallest().unwrap(), expected, 1e-8));
        assert!(close(eig.smallest(), 0.0, 1e-8));
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ])
        .unwrap();
        let eig = SymmetricEigen::compute(&m).unwrap();
        for (lambda, vec) in eig.eigenvalues().iter().zip(eig.eigenvectors()) {
            let mv = m.matvec(vec).unwrap();
            let lv = vec.scaled(*lambda);
            assert!(mv.distance(&lv).unwrap() < 1e-8);
            assert!(close(vec.norm(), 1.0, 1e-9));
        }
    }

    #[test]
    fn second_smallest_errors_on_one_by_one() {
        let m = Matrix::from_rows(&[vec![5.0]]).unwrap();
        let eig = SymmetricEigen::compute(&m).unwrap();
        assert!(eig.second_smallest().is_err());
        assert!(eig.second_smallest_eigenvector().is_err());
    }

    #[test]
    fn power_iteration_dominant_eigenvalue() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let result = PowerIteration::new().run(&m).unwrap();
        assert!(close(result.eigenvalue, 3.0, 1e-6));
        assert!(close(result.eigenvector.norm(), 1.0, 1e-9));
    }

    #[test]
    fn power_iteration_with_deflation_finds_second() {
        // For K_4 Laplacian, deflating the all-ones vector exposes λ = n = 4.
        let n = 4;
        let lap = complete_laplacian(n);
        let result = PowerIteration::new()
            .with_deflation(Vector::ones(n))
            .run(&lap)
            .unwrap();
        assert!(close(result.eigenvalue, n as f64, 1e-6));
    }

    #[test]
    fn power_iteration_zero_matrix() {
        let m = Matrix::zeros(3, 3);
        let result = PowerIteration::new().run(&m).unwrap();
        assert!(close(result.eigenvalue, 0.0, 1e-12));
    }

    #[test]
    fn power_iteration_rejects_nonsquare() {
        let m = Matrix::zeros(2, 3);
        assert!(PowerIteration::new().run(&m).is_err());
    }

    #[test]
    fn power_iteration_builder() {
        let p = PowerIteration::new()
            .with_max_iterations(10)
            .with_tolerance(1e-3);
        let m = Matrix::identity(3);
        let result = p.run(&m).unwrap();
        assert!(close(result.eigenvalue, 1.0, 1e-3));
        assert!(result.iterations <= 10);
    }

    #[test]
    fn power_iteration_matrix_free_matches_dense() {
        let dense = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let sparse = crate::CsrMatrix::from_dense(&dense);
        let from_dense = PowerIteration::new().run(&dense).unwrap();
        let from_sparse = PowerIteration::new().run_op(&sparse).unwrap();
        assert!(close(from_dense.eigenvalue, from_sparse.eigenvalue, 1e-9));
        assert!(close(from_sparse.eigenvalue, 3.0, 1e-6));
    }

    #[test]
    fn jacobi_and_power_iteration_agree() {
        let m = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 4.0, 0.5],
            vec![1.0, 0.5, 3.0],
        ])
        .unwrap();
        let eig = SymmetricEigen::compute(&m).unwrap();
        let power = PowerIteration::new().run(&m).unwrap();
        assert!(close(eig.largest(), power.eigenvalue, 1e-6));
    }

    proptest! {
        #[test]
        fn prop_eigenvalue_sum_equals_trace(n in 1usize..7, seed in 0u64..500) {
            // Build a random symmetric matrix from a deterministic seed.
            let m = Matrix::from_fn(n, n, |i, j| {
                let (a, b) = if i <= j { (i, j) } else { (j, i) };
                (((a * 31 + b * 17 + seed as usize * 7) % 19) as f64 - 9.0) / 3.0
            });
            let eig = SymmetricEigen::compute(&m).unwrap();
            let sum: f64 = eig.eigenvalues().iter().sum();
            prop_assert!((sum - m.trace().unwrap()).abs() < 1e-7);
        }

        #[test]
        fn prop_eigenvalues_sorted(n in 2usize..7, seed in 0u64..500) {
            let m = Matrix::from_fn(n, n, |i, j| {
                let (a, b) = if i <= j { (i, j) } else { (j, i) };
                (((a * 13 + b * 29 + seed as usize * 3) % 23) as f64 - 11.0) / 4.0
            });
            let eig = SymmetricEigen::compute(&m).unwrap();
            for w in eig.eigenvalues().windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-12);
            }
        }

        #[test]
        fn prop_laplacian_smallest_eigenvalue_zero(n in 2usize..8) {
            let eig = SymmetricEigen::compute(&complete_laplacian(n)).unwrap();
            prop_assert!(eig.smallest().abs() < 1e-7);
        }
    }
}
