//! A thin, owned dense vector of `f64` with the operations the rest of the
//! workspace needs: arithmetic, dot products, norms, means and variances,
//! and centering (projecting out the all-ones direction, which is how gossip
//! averaging error is measured).

use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// An owned dense vector of `f64`.
///
/// `Vector` is the value type used for node states, eigenvectors, and
/// intermediate quantities throughout the workspace.  It is intentionally a
/// plain newtype over `Vec<f64>`; callers who need the raw storage can use
/// [`Vector::as_slice`] or [`Vector::into_inner`].
///
/// # Examples
///
/// ```
/// use gossip_linalg::Vector;
///
/// let v = Vector::from(vec![1.0, 2.0, 3.0]);
/// assert_eq!(v.len(), 3);
/// assert!((v.mean() - 2.0).abs() < 1e-12);
/// assert!((v.dot(&v)? - 14.0).abs() < 1e-12);
/// # Ok::<(), gossip_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector(Vec<f64>);

impl Vector {
    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Vector(vec![0.0; len])
    }

    /// Creates a vector of `len` ones.
    pub fn ones(len: usize) -> Self {
        Vector(vec![1.0; len])
    }

    /// Creates a vector whose entries are all `value`.
    pub fn constant(len: usize, value: f64) -> Self {
        Vector(vec![value; len])
    }

    /// Creates the `i`-th canonical basis vector of dimension `len`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn basis(len: usize, i: usize) -> Self {
        assert!(i < len, "basis index {i} out of range for dimension {len}");
        let mut v = vec![0.0; len];
        v[i] = 1.0;
        Vector(v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrows the entries as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Borrows the entries as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.0.iter()
    }

    /// Iterates mutably over the entries.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.0.iter_mut()
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        self.check_same_len(other)?;
        Ok(self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum())
    }

    /// Euclidean (ℓ2) norm.
    pub fn norm(&self) -> f64 {
        self.0.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_squared(&self) -> f64 {
        self.0.iter().map(|x| x * x).sum::<f64>()
    }

    /// ℓ1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f64 {
        self.0.iter().map(|x| x.abs()).sum::<f64>()
    }

    /// ℓ∞ norm (maximum absolute value); `0.0` for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.0.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Arithmetic mean of the entries; `0.0` for the empty vector.
    pub fn mean(&self) -> f64 {
        if self.0.is_empty() {
            0.0
        } else {
            self.sum() / self.0.len() as f64
        }
    }

    /// Population variance of the entries (divides by `n`, not `n − 1`),
    /// matching the paper's `var X(t) = Σ (x_i − x_av)² / |V|`.
    pub fn variance(&self) -> f64 {
        if self.0.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.0.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / self.0.len() as f64
    }

    /// Minimum entry; `None` for the empty vector.
    pub fn min(&self) -> Option<f64> {
        self.0.iter().copied().reduce(f64::min)
    }

    /// Maximum entry; `None` for the empty vector.
    pub fn max(&self) -> Option<f64> {
        self.0.iter().copied().reduce(f64::max)
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Vector {
        Vector(self.0.iter().map(|x| x * factor).collect())
    }

    /// Scales the vector in place by `factor`.
    pub fn scale_in_place(&mut self, factor: f64) {
        for x in &mut self.0 {
            *x *= factor;
        }
    }

    /// In-place `self += alpha * other` (the classic axpy update).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) -> Result<()> {
        self.check_same_len(other)?;
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns a normalized copy (unit Euclidean norm).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if the vector is empty or has zero norm.
    pub fn normalized(&self) -> Result<Vector> {
        let n = self.norm();
        if self.is_empty() || n == 0.0 {
            return Err(LinalgError::Empty);
        }
        Ok(self.scaled(1.0 / n))
    }

    /// Returns a copy with the mean subtracted from every entry.
    ///
    /// Centering is how averaging error is expressed: the centered vector is
    /// the projection of the state onto the orthogonal complement of the
    /// all-ones direction, and its squared norm divided by `n` is exactly the
    /// paper's `var X(t)`.
    pub fn centered(&self) -> Vector {
        let mean = self.mean();
        Vector(self.0.iter().map(|x| x - mean).collect())
    }

    /// Componentwise distance `‖self − other‖₂`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn distance(&self, other: &Vector) -> Result<f64> {
        self.check_same_len(other)?;
        Ok(self
            .0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt())
    }

    /// Projects out the component of `self` along `direction` (which need not
    /// be normalized) and returns the remainder.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ, or
    /// [`LinalgError::Empty`] if `direction` has zero norm.
    pub fn project_out(&self, direction: &Vector) -> Result<Vector> {
        self.check_same_len(direction)?;
        let denom = direction.norm_squared();
        if denom == 0.0 {
            return Err(LinalgError::Empty);
        }
        let coeff = self.dot(direction)? / denom;
        let mut out = self.clone();
        out.axpy(-coeff, direction)?;
        Ok(out)
    }

    fn check_same_len(&self, other: &Vector) -> Result<()> {
        if self.len() != other.len() {
            Err(LinalgError::DimensionMismatch {
                expected: self.len(),
                actual: other.len(),
            })
        } else {
            Ok(())
        }
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector(v)
    }
}

impl From<&[f64]> for Vector {
    fn from(v: &[f64]) -> Self {
        Vector(v.to_vec())
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Vector(iter.into_iter().collect())
    }
}

impl Extend<f64> for Vector {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.0.extend(iter);
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.0[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.0[index]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector addition length mismatch");
        Vector(
            self.0
                .iter()
                .zip(rhs.0.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector subtraction length mismatch");
        Vector(
            self.0
                .iter()
                .zip(rhs.0.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector addition length mismatch");
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector subtraction length mismatch");
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a -= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn zeros_ones_constant() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::ones(2).as_slice(), &[1.0, 1.0]);
        assert_eq!(Vector::constant(2, 7.5).as_slice(), &[7.5, 7.5]);
    }

    #[test]
    fn basis_vector() {
        let e1 = Vector::basis(4, 1);
        assert_eq!(e1.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
        assert!(close(e1.norm(), 1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(3, 3);
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from(vec![3.0, -4.0]);
        assert!(close(a.norm(), 5.0));
        assert!(close(a.norm_squared(), 25.0));
        assert!(close(a.norm_l1(), 7.0));
        assert!(close(a.norm_inf(), 4.0));
        let b = Vector::from(vec![1.0, 2.0]);
        assert!(close(a.dot(&b).unwrap(), -5.0));
    }

    #[test]
    fn dot_dimension_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mean_and_variance() {
        let v = Vector::from(vec![1.0, 2.0, 3.0, 4.0]);
        assert!(close(v.mean(), 2.5));
        assert!(close(v.variance(), 1.25));
        assert!(close(Vector::zeros(0).mean(), 0.0));
        assert!(close(Vector::zeros(0).variance(), 0.0));
    }

    #[test]
    fn centered_has_zero_mean() {
        let v = Vector::from(vec![5.0, 1.0, -3.0, 9.0]);
        let c = v.centered();
        assert!(close(c.mean(), 0.0));
        // Variance is invariant under centering.
        assert!(close(c.variance(), v.variance()));
    }

    #[test]
    fn min_max() {
        let v = Vector::from(vec![2.0, -7.0, 4.0]);
        assert_eq!(v.min(), Some(-7.0));
        assert_eq!(v.max(), Some(4.0));
        assert_eq!(Vector::zeros(0).min(), None);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Vector::from(vec![1.0, 1.0]);
        let b = Vector::from(vec![2.0, -1.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 0.5]);
    }

    #[test]
    fn normalized_unit_norm() {
        let v = Vector::from(vec![3.0, 4.0]);
        let u = v.normalized().unwrap();
        assert!(close(u.norm(), 1.0));
        assert!(Vector::zeros(2).normalized().is_err());
    }

    #[test]
    fn project_out_removes_component() {
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        let ones = Vector::ones(3);
        let p = v.project_out(&ones).unwrap();
        assert!(close(p.dot(&ones).unwrap(), 0.0));
        // Projecting out the all-ones direction is the same as centering.
        assert!(close(p.distance(&v.centered()).unwrap(), 0.0));
    }

    #[test]
    fn operator_overloads() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn collect_and_extend() {
        let v: Vector = (0..4).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        let mut w = Vector::zeros(1);
        w.extend([2.0, 3.0]);
        assert_eq!(w.as_slice(), &[0.0, 2.0, 3.0]);
    }

    #[test]
    fn indexing() {
        let mut v = Vector::from(vec![1.0, 2.0]);
        assert_eq!(v[1], 2.0);
        v[0] = 9.0;
        assert_eq!(v[0], 9.0);
    }

    proptest! {
        #[test]
        fn prop_centered_mean_is_zero(xs in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
            let v = Vector::from(xs);
            let c = v.centered();
            prop_assert!(c.mean().abs() < 1e-6);
        }

        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 0..64)) {
            let v = Vector::from(xs);
            prop_assert!(v.variance() >= 0.0);
        }

        #[test]
        fn prop_norm_triangle_inequality(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..32),
            ys in proptest::collection::vec(-1e3f64..1e3, 1..32),
        ) {
            let n = xs.len().min(ys.len());
            let a = Vector::from(xs[..n].to_vec());
            let b = Vector::from(ys[..n].to_vec());
            let sum = &a + &b;
            prop_assert!(sum.norm() <= a.norm() + b.norm() + 1e-9);
        }

        #[test]
        fn prop_cauchy_schwarz(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..32),
            ys in proptest::collection::vec(-1e3f64..1e3, 1..32),
        ) {
            let n = xs.len().min(ys.len());
            let a = Vector::from(xs[..n].to_vec());
            let b = Vector::from(ys[..n].to_vec());
            let lhs = a.dot(&b).unwrap().abs();
            let rhs = a.norm() * b.norm();
            prop_assert!(lhs <= rhs + 1e-6);
        }
    }
}
