//! Matrix-free Lanczos iteration for the extreme eigenvalues of a symmetric
//! operator.
//!
//! The dense Jacobi solver ([`crate::SymmetricEigen`]) computes the whole
//! spectrum in O(n³); the spectral quantities the gossip reproduction needs
//! are only the *extremes* — `λ_max` of a Laplacian and, after deflating the
//! all-ones null direction, the Fiedler value `λ₂`.  [`Lanczos`] computes
//! exactly those from nothing but matrix–vector products, so combined with
//! [`crate::CsrMatrix`] (or any [`LinearOperator`]) the cost is
//! O(k·nnz + k²·n) for `k` iterations instead of O(n³) time and O(n²)
//! memory.
//!
//! Implementation notes:
//!
//! * full reorthogonalization against the stored basis (with the classic
//!   "twice is enough" second pass) keeps the Ritz values trustworthy even
//!   for the near-degenerate spectra of clique-pair graphs;
//! * deflation directions (for Laplacians: the all-ones vector) are
//!   orthonormalized once and projected out of every iterate;
//! * the tridiagonal eigenproblem is solved by Sturm-sequence bisection —
//!   O(k) per extreme eigenvalue evaluation — and eigenvectors of the
//!   tridiagonal matrix by shifted inverse iteration, so no dense matrix of
//!   the operator's dimension is ever formed;
//! * everything is deterministic: the starting vector is a fixed function of
//!   the dimension, as required by the workspace's bit-reproducibility
//!   contract.

use crate::{LinalgError, LinearOperator, Result, Vector};

/// Configuration/builder for a Lanczos run.
///
/// # Examples
///
/// Fiedler value of a path Laplacian, without touching a dense matrix:
///
/// ```
/// use gossip_linalg::{CsrMatrix, Lanczos, Vector};
///
/// // Laplacian of the path 0 - 1 - 2.
/// let lap = CsrMatrix::from_triplets(3, 3, &[
///     (0, 0, 1.0), (0, 1, -1.0),
///     (1, 0, -1.0), (1, 1, 2.0), (1, 2, -1.0),
///     (2, 1, -1.0), (2, 2, 1.0),
/// ])?;
/// let eig = Lanczos::new().with_deflation(Vector::ones(3)).run(&lap)?;
/// assert!((eig.smallest - 1.0).abs() < 1e-9); // λ₂ = 1
/// assert!((eig.largest - 3.0).abs() < 1e-9);  // λ_max = 3
/// # Ok::<(), gossip_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lanczos {
    max_iterations: usize,
    tolerance: f64,
    check_every: usize,
    deflate: Vec<Vector>,
}

/// Outcome of a [`Lanczos`] run.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// The smallest eigenvalue of the operator restricted to the orthogonal
    /// complement of the deflation space.
    pub smallest: f64,
    /// The largest eigenvalue on the same subspace.
    pub largest: f64,
    /// Unit-norm Ritz vector associated with [`LanczosResult::smallest`].
    pub smallest_vector: Vector,
    /// Unit-norm Ritz vector associated with [`LanczosResult::largest`].
    pub largest_vector: Vector,
    /// Number of Lanczos steps performed.
    pub iterations: usize,
    /// `true` when the Krylov space became exactly invariant (breakdown or
    /// dimension exhaustion), in which case the Ritz values are exact up to
    /// round-off rather than iteratively converged.
    pub exhausted: bool,
}

impl Default for Lanczos {
    fn default() -> Self {
        Self::new()
    }
}

impl Lanczos {
    /// Creates a solver with default settings (250 iterations, relative
    /// tolerance `1e-10`, convergence checked every 5 steps).
    pub fn new() -> Self {
        Lanczos {
            max_iterations: 250,
            tolerance: 1e-10,
            check_every: 5,
            deflate: Vec::new(),
        }
    }

    /// Sets the maximum number of Lanczos steps.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }

    /// Sets the relative stabilization tolerance on the extreme Ritz values.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets how often (in steps) the extreme Ritz values are re-evaluated
    /// for the stabilization check.
    pub fn with_check_every(mut self, check_every: usize) -> Self {
        self.check_every = check_every.max(1);
        self
    }

    /// Adds a direction to project out of every iterate.  For a graph
    /// Laplacian, deflating the all-ones vector exposes the Fiedler value as
    /// the smallest remaining eigenvalue.
    pub fn with_deflation(mut self, direction: Vector) -> Self {
        self.deflate.push(direction);
        self
    }

    /// Runs the iteration on a symmetric operator.
    ///
    /// The operator is trusted to be symmetric; feeding a non-symmetric
    /// operator yields meaningless Ritz values (the solver cannot check
    /// symmetry without O(n²) work, which is exactly what it exists to
    /// avoid).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if the operator has dimension 0 or the
    /// deflation space covers the entire space, and
    /// [`LinalgError::NoConvergence`] if the extreme Ritz values have not
    /// stabilized within the iteration budget.
    pub fn run<O: LinearOperator + ?Sized>(&self, op: &O) -> Result<LanczosResult> {
        let n = op.dim();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        // Orthonormalize the deflation directions once.
        let mut deflate: Vec<Vector> = Vec::with_capacity(self.deflate.len());
        for d in &self.deflate {
            if d.len() != n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    actual: d.len(),
                });
            }
            let mut v = d.clone();
            for u in &deflate {
                let c = u.dot(&v)?;
                axpy(&mut v, -c, u);
            }
            let norm = v.norm();
            if norm > 1e-12 {
                deflate.push(v.scaled(1.0 / norm));
            }
        }
        if deflate.len() >= n {
            return Err(LinalgError::Empty);
        }
        let effective = n - deflate.len();

        // Deterministic, well-spread starting vector (same family as the
        // power iteration's), projected into the deflated subspace.
        let mut v0: Vector = (0..n).map(|i| 1.0 + ((i as f64) * 0.7511).sin()).collect();
        project_out(&mut v0, &deflate)?;
        let mut basis_index = 0;
        while v0.norm() <= 1e-12 && basis_index < n {
            v0 = Vector::basis(n, basis_index);
            project_out(&mut v0, &deflate)?;
            basis_index += 1;
        }
        let norm = v0.norm();
        if norm <= 1e-12 {
            return Err(LinalgError::Empty);
        }
        let v0 = v0.scaled(1.0 / norm);

        let budget = self.max_iterations.min(effective);
        let mut basis: Vec<Vector> = Vec::with_capacity(budget);
        basis.push(v0);
        let mut alphas: Vec<f64> = Vec::with_capacity(budget);
        let mut betas: Vec<f64> = Vec::with_capacity(budget);
        let mut previous: Option<(f64, f64)> = None;
        // Stabilization must hold over two consecutive check windows: a
        // single small change can be a plateau (tiny overlap with a
        // not-yet-found extreme direction), not convergence.
        let mut stable_checks = 0usize;
        let mut exhausted = false;
        let mut converged = false;

        for step in 1..=budget {
            let vk = &basis[step - 1];
            let mut w = op.apply(vk)?;
            let alpha = vk.dot(&w)?;
            axpy(&mut w, -alpha, vk);
            if step >= 2 {
                let beta_prev = betas[step - 2];
                axpy(&mut w, -beta_prev, &basis[step - 2]);
            }
            alphas.push(alpha);

            // Full reorthogonalization with a conditional second pass
            // (Kahan–Parlett "twice is enough").
            let before = w.norm();
            reorthogonalize(&mut w, &deflate, &basis)?;
            if w.norm() < 0.5 * before {
                reorthogonalize(&mut w, &deflate, &basis)?;
            }

            let scale = tridiagonal_scale(&alphas, &betas).max(1.0);
            let beta = w.norm();
            if beta <= 1e-13 * scale {
                // Invariant subspace: the Ritz values are exact.
                exhausted = true;
                converged = true;
                break;
            }
            if step == budget {
                if step == effective {
                    exhausted = true;
                    converged = true;
                } else if stable_checks >= 1 {
                    // Last-chance stabilization check at the budget edge.
                    let extremes = tridiagonal_extremes(&alphas, &betas[..step - 1]);
                    let (ps, pl) = previous.expect("stable check implies a previous evaluation");
                    let tol = self.tolerance * scale;
                    converged = (extremes.0 - ps).abs() <= tol && (extremes.1 - pl).abs() <= tol;
                }
                break;
            }
            betas.push(beta);
            basis.push(w.scaled(1.0 / beta));

            if step >= 2 && step % self.check_every == 0 {
                let extremes = tridiagonal_extremes(&alphas, &betas[..step - 1]);
                if let Some((ps, pl)) = previous {
                    let tol = self.tolerance * scale;
                    if (extremes.0 - ps).abs() <= tol && (extremes.1 - pl).abs() <= tol {
                        stable_checks += 1;
                        if stable_checks >= 2 {
                            converged = true;
                            break;
                        }
                    } else {
                        stable_checks = 0;
                    }
                }
                previous = Some(extremes);
            }
        }

        if !converged {
            return Err(LinalgError::NoConvergence {
                iterations: self.max_iterations,
            });
        }

        let k = alphas.len();
        let inner_betas = &betas[..k - 1];
        let (smallest, largest) = tridiagonal_extremes(&alphas, inner_betas);
        let small_t = tridiagonal_eigenvector(&alphas, inner_betas, smallest);
        let large_t = tridiagonal_eigenvector(&alphas, inner_betas, largest);
        let smallest_vector = ritz_vector(&basis[..k], &small_t, &deflate)?;
        let largest_vector = ritz_vector(&basis[..k], &large_t, &deflate)?;
        Ok(LanczosResult {
            smallest,
            largest,
            smallest_vector,
            largest_vector,
            iterations: k,
            exhausted,
        })
    }
}

/// `y += a·x`, in place.
fn axpy(y: &mut Vector, a: f64, x: &Vector) {
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// Projects every direction in `space` out of `v`, in place.
fn project_out(v: &mut Vector, space: &[Vector]) -> Result<()> {
    for u in space {
        let c = u.dot(v)?;
        axpy(v, -c, u);
    }
    Ok(())
}

/// One classical Gram–Schmidt sweep of `w` against the deflation space and
/// the Lanczos basis.
fn reorthogonalize(w: &mut Vector, deflate: &[Vector], basis: &[Vector]) -> Result<()> {
    project_out(w, deflate)?;
    project_out(w, basis)?;
    Ok(())
}

/// A magnitude scale for the tridiagonal matrix (largest Gershgorin radius).
fn tridiagonal_scale(alphas: &[f64], betas: &[f64]) -> f64 {
    alphas
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let left = if i > 0 {
                betas.get(i - 1).map_or(0.0, |b| b.abs())
            } else {
                0.0
            };
            let right = betas.get(i).map_or(0.0, |b| b.abs());
            a.abs() + left + right
        })
        .fold(0.0, f64::max)
}

/// Number of eigenvalues of the symmetric tridiagonal matrix `(alphas,
/// betas)` strictly below `x`, via the Sturm sequence of the LDLᵀ pivots.
fn sturm_count_below(alphas: &[f64], betas: &[f64], x: f64) -> usize {
    let tiny = f64::MIN_POSITIVE;
    let mut count = 0;
    let mut d = 1.0_f64;
    for (i, &a) in alphas.iter().enumerate() {
        let off = if i > 0 {
            betas[i - 1] * betas[i - 1]
        } else {
            0.0
        };
        d = (a - x) - off / d;
        if d == 0.0 {
            d = -tiny;
        }
        if d < 0.0 {
            count += 1;
        }
    }
    count
}

/// The `index`-th smallest eigenvalue (0-based) of the symmetric tridiagonal
/// matrix, by bisection on the Sturm count.
fn tridiagonal_eigenvalue(alphas: &[f64], betas: &[f64], index: usize) -> f64 {
    let n = alphas.len();
    debug_assert!(index < n);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (i, &a) in alphas.iter().enumerate() {
        let left = if i > 0 { betas[i - 1].abs() } else { 0.0 };
        let right = betas.get(i).map_or(0.0, |b| b.abs());
        lo = lo.min(a - left - right);
        hi = hi.max(a + left + right);
    }
    // Widen slightly so both bounds are strict.
    let width = (hi - lo).max(1.0);
    lo -= 1e-12 * width;
    hi += 1e-12 * width;
    for _ in 0..120 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if sturm_count_below(alphas, betas, mid) > index {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Smallest and largest eigenvalues of the symmetric tridiagonal matrix.
fn tridiagonal_extremes(alphas: &[f64], betas: &[f64]) -> (f64, f64) {
    let n = alphas.len();
    (
        tridiagonal_eigenvalue(alphas, betas, 0),
        tridiagonal_eigenvalue(alphas, betas, n - 1),
    )
}

/// Solves `(T − shift·I)·y = b` for a symmetric tridiagonal `T` by the Thomas
/// algorithm with a tiny-pivot safeguard; returns the (unnormalized) `y`.
fn solve_tridiagonal_shifted(alphas: &[f64], betas: &[f64], shift: f64, b: &[f64]) -> Vec<f64> {
    let n = alphas.len();
    let mut diag: Vec<f64> = alphas.iter().map(|&a| a - shift).collect();
    let mut rhs = b.to_vec();
    let floor = 1e-300;
    // Forward elimination.
    for i in 1..n {
        if diag[i - 1].abs() < floor {
            diag[i - 1] = if diag[i - 1] < 0.0 { -floor } else { floor };
        }
        let m = betas[i - 1] / diag[i - 1];
        diag[i] -= m * betas[i - 1];
        rhs[i] -= m * rhs[i - 1];
    }
    if diag[n - 1].abs() < floor {
        diag[n - 1] = if diag[n - 1] < 0.0 { -floor } else { floor };
    }
    // Back substitution.
    let mut y = vec![0.0; n];
    y[n - 1] = rhs[n - 1] / diag[n - 1];
    for i in (0..n - 1).rev() {
        y[i] = (rhs[i] - betas[i] * y[i + 1]) / diag[i];
    }
    y
}

/// Unit-norm eigenvector of the symmetric tridiagonal matrix for the (already
/// converged) eigenvalue `theta`, by shifted inverse iteration.
fn tridiagonal_eigenvector(alphas: &[f64], betas: &[f64], theta: f64) -> Vec<f64> {
    let n = alphas.len();
    if n == 1 {
        return vec![1.0];
    }
    let scale = tridiagonal_scale(alphas, betas).max(1.0);
    let mut y: Vec<f64> = (0..n).map(|i| 1.0 + ((i as f64) * 0.9321).cos()).collect();
    let mut shift_pad = 1e-14 * scale;
    for _attempt in 0..6 {
        let mut ok = true;
        for _ in 0..3 {
            let z = solve_tridiagonal_shifted(alphas, betas, theta + shift_pad, &y);
            let norm = z.iter().map(|v| v * v).sum::<f64>().sqrt();
            if !norm.is_finite() || norm == 0.0 {
                ok = false;
                break;
            }
            y = z.iter().map(|v| v / norm).collect();
        }
        if ok {
            return y;
        }
        shift_pad *= 100.0;
        y = (0..n).map(|i| 1.0 + ((i as f64) * 0.9321).cos()).collect();
    }
    // Last resort: a basis vector (only reachable for pathological input).
    let mut fallback = vec![0.0; n];
    fallback[0] = 1.0;
    fallback
}

/// Maps a tridiagonal eigenvector back through the Lanczos basis and
/// renormalizes inside the deflated subspace.
fn ritz_vector(basis: &[Vector], coeffs: &[f64], deflate: &[Vector]) -> Result<Vector> {
    let n = basis[0].len();
    let mut out = Vector::zeros(n);
    for (v, &c) in basis.iter().zip(coeffs.iter()) {
        axpy(&mut out, c, v);
    }
    project_out(&mut out, deflate)?;
    let norm = out.norm();
    if norm > 0.0 {
        out = out.scaled(1.0 / norm);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CsrMatrix, Matrix, SymmetricEigen};

    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut triplets = Vec::new();
        for i in 0..n - 1 {
            triplets.push((i, i, 1.0));
            triplets.push((i + 1, i + 1, 1.0));
            triplets.push((i, i + 1, -1.0));
            triplets.push((i + 1, i, -1.0));
        }
        CsrMatrix::from_triplets(n, n, &triplets).unwrap()
    }

    #[test]
    fn diagonal_matrix_extremes() {
        let m = CsrMatrix::from_dense(&Matrix::from_diagonal(&[3.0, -1.0, 2.0, 7.0]));
        let eig = Lanczos::new().run(&m).unwrap();
        assert!((eig.smallest - -1.0).abs() < 1e-9);
        assert!((eig.largest - 7.0).abs() < 1e-9);
        assert!(eig.exhausted);
    }

    #[test]
    fn path_laplacian_matches_closed_form() {
        let n = 12;
        let eig = Lanczos::new()
            .with_deflation(Vector::ones(n))
            .run(&path_laplacian(n))
            .unwrap();
        let lambda2 = 2.0 * (1.0 - (std::f64::consts::PI / n as f64).cos());
        let lambda_max = 2.0 * (1.0 - (std::f64::consts::PI * (n as f64 - 1.0) / n as f64).cos());
        assert!((eig.smallest - lambda2).abs() < 1e-8, "{}", eig.smallest);
        assert!((eig.largest - lambda_max).abs() < 1e-8, "{}", eig.largest);
    }

    #[test]
    fn ritz_vectors_satisfy_definition() {
        let n = 10;
        let lap = path_laplacian(n);
        let eig = Lanczos::new()
            .with_deflation(Vector::ones(n))
            .run(&lap)
            .unwrap();
        for (theta, vec) in [
            (eig.smallest, &eig.smallest_vector),
            (eig.largest, &eig.largest_vector),
        ] {
            assert!((vec.norm() - 1.0).abs() < 1e-9);
            let lv = lap.matvec(vec).unwrap();
            let residual = lv.distance(&vec.scaled(theta)).unwrap();
            assert!(residual < 1e-6, "residual {residual} at theta {theta}");
        }
    }

    #[test]
    fn agrees_with_jacobi_on_dense_symmetric() {
        let dense = Matrix::from_fn(9, 9, |i, j| {
            let (a, b) = if i <= j { (i, j) } else { (j, i) };
            (((a * 31 + b * 17) % 13) as f64 - 6.0) / 3.0
        });
        let jac = SymmetricEigen::compute(&dense).unwrap();
        let lan = Lanczos::new().run(&CsrMatrix::from_dense(&dense)).unwrap();
        assert!((lan.smallest - jac.smallest()).abs() < 1e-8);
        assert!((lan.largest - jac.largest()).abs() < 1e-8);
    }

    #[test]
    fn one_dimensional_deflated_space() {
        // Single-edge Laplacian: after deflating ones, the space is 1-D.
        let lap = path_laplacian(2);
        let eig = Lanczos::new()
            .with_deflation(Vector::ones(2))
            .run(&lap)
            .unwrap();
        assert!((eig.smallest - 2.0).abs() < 1e-10);
        assert!((eig.largest - 2.0).abs() < 1e-10);
        assert_eq!(eig.iterations, 1);
        assert!(eig.exhausted);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        struct Zero;
        impl LinearOperator for Zero {
            fn dim(&self) -> usize {
                0
            }
            fn apply(&self, x: &Vector) -> Result<Vector> {
                Ok(x.clone())
            }
        }
        assert!(matches!(Lanczos::new().run(&Zero), Err(LinalgError::Empty)));
        // Deflating the whole space leaves nothing to iterate on.
        let id = CsrMatrix::identity(1);
        assert!(matches!(
            Lanczos::new().with_deflation(Vector::ones(1)).run(&id),
            Err(LinalgError::Empty)
        ));
        // Mismatched deflation vector.
        assert!(Lanczos::new()
            .with_deflation(Vector::ones(3))
            .run(&CsrMatrix::identity(2))
            .is_err());
    }

    #[test]
    fn repeated_deflation_directions_are_collapsed() {
        let n = 6;
        let eig = Lanczos::new()
            .with_deflation(Vector::ones(n))
            .with_deflation(Vector::ones(n).scaled(3.0))
            .run(&path_laplacian(n))
            .unwrap();
        let lambda2 = 2.0 * (1.0 - (std::f64::consts::PI / n as f64).cos());
        assert!((eig.smallest - lambda2).abs() < 1e-8);
    }

    #[test]
    fn builder_setters_apply() {
        let solver = Lanczos::new()
            .with_max_iterations(7)
            .with_tolerance(1e-6)
            .with_check_every(2);
        assert_eq!(solver.max_iterations, 7);
        assert_eq!(solver.check_every, 2);
        // Budget ≥ dimension: the Krylov space is exhausted and exact.
        let eig = solver.run(&path_laplacian(6)).unwrap();
        assert!(eig.iterations <= 7);
        assert!(eig.exhausted);
        // Budget far below what a hard spectrum needs: explicit failure.
        assert!(matches!(
            Lanczos::new()
                .with_max_iterations(4)
                .with_tolerance(1e-14)
                .run(&path_laplacian(40)),
            Err(LinalgError::NoConvergence { .. })
        ));
    }

    #[test]
    fn sturm_bisection_is_exact_on_known_tridiagonal() {
        // T = tridiag(-1, 2, -1) of size 5: eigenvalues 2 - 2 cos(kπ/6).
        let alphas = vec![2.0; 5];
        let betas = vec![-1.0; 4];
        for k in 1..=5usize {
            let expected = 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / 6.0).cos();
            let got = tridiagonal_eigenvalue(&alphas, &betas, k - 1);
            assert!(
                (got - expected).abs() < 1e-9,
                "k = {k}: {got} vs {expected}"
            );
        }
    }
}
