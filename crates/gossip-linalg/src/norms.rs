//! Operator norms.
//!
//! The paper's Section 3 reasons about the ℓ2 → ℓ2 operator norm of the epoch
//! operators `A_k` (the composition of all linear updates between consecutive
//! non-convex ticks).  This module provides an exact spectral-norm computation
//! via the eigenvalues of `AᵀA` and a cheaper power-iteration estimate, plus
//! the induced 1- and ∞-norms for completeness.

use crate::{Matrix, PowerIteration, Result, SymmetricEigen};

/// Exact spectral norm `‖A‖₂ = σ_max(A)`, computed from the eigenvalues of
/// `AᵀA` with the Jacobi solver.
///
/// # Errors
///
/// Propagates errors from the eigensolver (e.g. an empty matrix).
///
/// # Examples
///
/// ```
/// use gossip_linalg::{Matrix, norms};
///
/// let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]])?;
/// assert!((norms::spectral_norm(&a)? - 4.0).abs() < 1e-9);
/// # Ok::<(), gossip_linalg::LinalgError>(())
/// ```
pub fn spectral_norm(matrix: &Matrix) -> Result<f64> {
    let gram = matrix.transpose().matmul(matrix)?;
    let eig = SymmetricEigen::compute(&gram)?;
    Ok(eig.largest().max(0.0).sqrt())
}

/// Power-iteration estimate of the spectral norm.
///
/// Cheaper than [`spectral_norm`] for larger matrices; accurate to the given
/// tolerance when the dominant singular value is separated.
///
/// # Errors
///
/// Propagates dimension and convergence errors from [`PowerIteration`].
pub fn spectral_norm_estimate(matrix: &Matrix, max_iterations: usize) -> Result<f64> {
    let gram = matrix.transpose().matmul(matrix)?;
    let result = PowerIteration::new()
        .with_max_iterations(max_iterations)
        .with_tolerance(1e-10)
        .run(&gram)?;
    Ok(result.eigenvalue.max(0.0).sqrt())
}

/// Induced 1-norm (maximum absolute column sum).
pub fn induced_one_norm(matrix: &Matrix) -> f64 {
    (0..matrix.cols())
        .map(|j| (0..matrix.rows()).map(|i| matrix.get(i, j).abs()).sum())
        .fold(0.0_f64, f64::max)
}

/// Induced ∞-norm (maximum absolute row sum).
pub fn induced_inf_norm(matrix: &Matrix) -> f64 {
    (0..matrix.rows())
        .map(|i| matrix.row(i).iter().map(|x| x.abs()).sum())
        .fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn spectral_norm_diagonal() {
        let a = Matrix::from_diagonal(&[1.0, -5.0, 3.0]);
        assert!((spectral_norm(&a).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn spectral_norm_rank_one() {
        // For the rank-one matrix uvᵀ the spectral norm is ‖u‖·‖v‖.
        let a = Matrix::from_fn(2, 3, |i, j| ((i + 1) * (j + 1)) as f64);
        let expected = (1.0f64 + 4.0).sqrt() * (1.0f64 + 4.0 + 9.0).sqrt();
        assert!((spectral_norm(&a).unwrap() - expected).abs() < 1e-8);
    }

    #[test]
    fn estimate_matches_exact() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![0.0, 3.0, 1.0],
            vec![1.0, 0.0, 1.0],
        ])
        .unwrap();
        let exact = spectral_norm(&a).unwrap();
        let estimate = spectral_norm_estimate(&a, 5000).unwrap();
        assert!((exact - estimate).abs() < 1e-6);
    }

    #[test]
    fn induced_norms() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 4.0]]).unwrap();
        assert!((induced_one_norm(&a) - 6.0).abs() < 1e-12);
        assert!((induced_inf_norm(&a) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn identity_norms_are_one() {
        let id = Matrix::identity(4);
        assert!((spectral_norm(&id).unwrap() - 1.0).abs() < 1e-9);
        assert!((induced_one_norm(&id) - 1.0).abs() < 1e-12);
        assert!((induced_inf_norm(&id) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_spectral_norm_bounded_by_frobenius(n in 1usize..5, seed in 0u64..300) {
            let a = Matrix::from_fn(n, n, |i, j| {
                (((i * 7 + j * 11 + seed as usize) % 17) as f64 - 8.0) / 4.0
            });
            let s = spectral_norm(&a).unwrap();
            prop_assert!(s <= a.frobenius_norm() + 1e-8);
            // And it dominates |A x| / |x| for a specific probe vector.
            let x = crate::Vector::ones(n);
            let ax = a.matvec(&x).unwrap();
            prop_assert!(ax.norm() <= s * x.norm() + 1e-7);
        }

        #[test]
        fn prop_norm_nonnegative_and_submultiplicative(n in 1usize..4, seed in 0u64..200) {
            let a = Matrix::from_fn(n, n, |i, j| (((i + 3 * j + seed as usize) % 7) as f64) - 3.0);
            let b = Matrix::from_fn(n, n, |i, j| (((2 * i + j + seed as usize) % 5) as f64) - 2.0);
            let na = spectral_norm(&a).unwrap();
            let nb = spectral_norm(&b).unwrap();
            let nab = spectral_norm(&a.matmul(&b).unwrap()).unwrap();
            prop_assert!(na >= 0.0 && nb >= 0.0);
            prop_assert!(nab <= na * nb + 1e-7);
        }
    }
}
