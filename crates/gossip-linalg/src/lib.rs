//! Linear algebra for the sparse-cut gossip reproduction.
//!
//! Two tiers share one vocabulary of types:
//!
//! * **Dense** — a [`Vector`] newtype, a row-major [`Matrix`], a symmetric
//!   Jacobi eigensolver in [`eigen`], and power iteration.  The graphs
//!   studied directly in *Distributed averaging in the presence of a sparse
//!   cut* (Narayanan, PODC 2008) are modest (hundreds of vertices), where
//!   O(n²) storage and O(n³) kernels are perfectly adequate — and trivially
//!   trustworthy, which makes the dense tier the *reference oracle*.
//! * **Sparse** — a compressed-sparse-row [`CsrMatrix`], the matrix-free
//!   [`LinearOperator`] abstraction, and a [`Lanczos`] solver for the extreme
//!   eigenvalues (with deflation, so the Fiedler value of a Laplacian is one
//!   of them).  Everything is O(nnz) per product, which is what lets the
//!   workspace's spectral pipeline scale to tens of thousands of nodes.
//!
//! The two tiers are held together by a differential test oracle
//! (`tests/sparse_dense_differential.rs` at the workspace root) asserting
//! that every sparse kernel agrees with its dense counterpart.  The crate
//! deliberately has no external linear-algebra dependencies.
//!
//! # Examples
//!
//! Compute the two smallest eigenvalues of a path-graph Laplacian:
//!
//! ```
//! use gossip_linalg::{Matrix, SymmetricEigen};
//!
//! // Laplacian of the path graph on 3 vertices: 0 - 1 - 2
//! let lap = Matrix::from_rows(&[
//!     vec![1.0, -1.0, 0.0],
//!     vec![-1.0, 2.0, -1.0],
//!     vec![0.0, -1.0, 1.0],
//! ])?;
//! let eig = SymmetricEigen::compute(&lap)?;
//! assert!(eig.eigenvalues()[0].abs() < 1e-9);          // lambda_1 = 0
//! assert!((eig.eigenvalues()[1] - 1.0).abs() < 1e-9);  // lambda_2 = 1
//! # Ok::<(), gossip_linalg::LinalgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eigen;
pub mod lanczos;
pub mod matrix;
pub mod norms;
pub mod operator;
pub mod sparse;
pub mod vector;

pub use eigen::{PowerIteration, SymmetricEigen};
pub use lanczos::{Lanczos, LanczosResult};
pub use matrix::Matrix;
pub use operator::LinearOperator;
pub use sparse::CsrMatrix;
pub use vector::Vector;

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A matrix that must be symmetric was not (within tolerance).
    NotSymmetric,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations that were performed before giving up.
        iterations: usize,
    },
    /// An empty matrix or vector was supplied where a non-empty one is required.
    Empty,
    /// Rows of differing lengths were supplied to a matrix constructor.
    RaggedRows,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            LinalgError::NotSymmetric => write!(f, "matrix is not symmetric"),
            LinalgError::NoConvergence { iterations } => {
                write!(
                    f,
                    "iteration did not converge after {iterations} iterations"
                )
            }
            LinalgError::Empty => write!(f, "empty operand"),
            LinalgError::RaggedRows => write!(f, "rows have differing lengths"),
        }
    }
}

impl Error for LinalgError {}

/// Convenient result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Tolerance used for symmetry and convergence checks throughout the crate.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            LinalgError::DimensionMismatch {
                expected: 3,
                actual: 4,
            },
            LinalgError::NotSquare { rows: 2, cols: 3 },
            LinalgError::NotSymmetric,
            LinalgError::NoConvergence { iterations: 100 },
            LinalgError::Empty,
            LinalgError::RaggedRows,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
