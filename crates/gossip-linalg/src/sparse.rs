//! Sparse matrices in compressed-sparse-row (CSR) form.
//!
//! Graph Laplacians and expected gossip matrices have O(|E|) non-zeros, so
//! above a few hundred nodes the dense [`crate::Matrix`] representation
//! wastes both memory (O(n²)) and time (O(n²) per matvec).  [`CsrMatrix`]
//! stores only the non-zeros and is the substrate of the workspace's
//! large-`n` spectral path: `matvec` is O(nnz), which combined with the
//! matrix-free [`crate::Lanczos`] solver keeps the whole pipeline linear in
//! the graph size.
//!
//! The dense and sparse representations are kept interchangeable
//! ([`CsrMatrix::from_dense`] / [`CsrMatrix::to_dense`]): the workspace's
//! differential test oracle (`tests/sparse_dense_differential.rs` at the
//! workspace root) asserts that every sparse kernel agrees with its dense
//! counterpart on every generator family.

use crate::{LinalgError, Matrix, Result, Vector};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sparse `f64` matrix in compressed-sparse-row form.
///
/// Within each row the stored entries are sorted by column and contain no
/// duplicates; explicitly stored zeros are allowed (they arise from exact
/// cancellation in [`CsrMatrix::from_triplets`]) but never created by
/// [`CsrMatrix::from_dense`].
///
/// # Examples
///
/// ```
/// use gossip_linalg::{CsrMatrix, Vector};
///
/// // The 2×2 Laplacian of a single edge.
/// let lap = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, -1.0),
///                                            (1, 0, -1.0), (1, 1, 1.0)])?;
/// let x = Vector::from(vec![3.0, 1.0]);
/// assert_eq!(lap.matvec(&x)?.as_slice(), &[2.0, -2.0]);
/// assert_eq!(lap.nnz(), 4);
/// # Ok::<(), gossip_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i + 1]` indexes row `i` in `col_idx`/`values`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an empty (all-zero) `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may arrive in any order; duplicates targeting the same entry
    /// are summed (the usual assembly convention for Laplacians).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any triplet indexes out
    /// of range.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows {
                return Err(LinalgError::DimensionMismatch {
                    expected: rows,
                    actual: r,
                });
            }
            if c >= cols {
                return Err(LinalgError::DimensionMismatch {
                    expected: cols,
                    actual: c,
                });
            }
        }
        // Counting sort by row, then sort each row by column and merge
        // duplicates; O(nnz log nnz) overall and allocation-light.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut scatter: Vec<(usize, f64)> = vec![(0, 0.0); triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            scatter[cursor[r]] = (c, v);
            cursor[r] += 1;
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for i in 0..rows {
            let row = &mut scatter[counts[i]..counts[i + 1]];
            row.sort_by_key(|&(c, _)| c);
            for &(c, v) in row.iter() {
                if col_idx.len() > row_ptr[i] && col_idx.last() == Some(&c) {
                    *values.last_mut().expect("values tracks col_idx") += v;
                } else {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &Matrix) -> Self {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materializes the dense representation.  Only sensible for small
    /// matrices — the whole point of CSR is to avoid this at scale.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                out.set(i, j, v);
            }
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Reads the entry at `(i, j)`, returning `0.0` for entries that are not
    /// stored.  O(log nnz(row i)) via binary search.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "sparse index out of range");
        let cols = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
        match cols.binary_search(&j) {
            Ok(k) => self.values[self.row_ptr[i] + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored `(column, value)` pairs of row `i`, in
    /// increasing column order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.rows, "row index out of range");
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Number of stored entries in row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        assert!(i < self.rows, "row index out of range");
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Matrix–vector product `A·x` in O(nnz).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        let xs = x.as_slice();
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let span = self.row_ptr[i]..self.row_ptr[i + 1];
            let acc: f64 = self.col_idx[span.clone()]
                .iter()
                .zip(self.values[span].iter())
                .map(|(&j, &v)| v * xs[j])
                .sum();
            out.push(acc);
        }
        Ok(Vector::from(out))
    }

    /// Quadratic form `xᵀ·A·x` in O(nnz) without allocating `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if dimensions disagree.
    pub fn quadratic_form(&self, x: &Vector) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        let xs = x.as_slice();
        let mut total = 0.0;
        for i in 0..self.rows {
            let span = self.row_ptr[i]..self.row_ptr[i + 1];
            let row_dot: f64 = self.col_idx[span.clone()]
                .iter()
                .zip(self.values[span].iter())
                .map(|(&j, &v)| v * xs[j])
                .sum();
            total += xs[i] * row_dot;
        }
        Ok(total)
    }

    /// Returns the transpose, in O(nnz).
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = row_ptr.clone();
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                col_idx[cursor[j]] = i;
                values[cursor[j]] = v;
                cursor[j] += 1;
            }
        }
        // Rows of the transpose are automatically sorted because the outer
        // loop visits source rows (= target columns) in increasing order.
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Returns `true` if the matrix is symmetric within `tol`, comparing
    /// against the transpose entry-by-entry (missing entries count as zero).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let t = self.transpose();
        for i in 0..self.rows {
            let mut a = self.row_iter(i).peekable();
            let mut b = t.row_iter(i).peekable();
            loop {
                match (a.peek().copied(), b.peek().copied()) {
                    (None, None) => break,
                    (Some((_, va)), None) => {
                        if va.abs() > tol {
                            return false;
                        }
                        a.next();
                    }
                    (None, Some((_, vb))) => {
                        if vb.abs() > tol {
                            return false;
                        }
                        b.next();
                    }
                    (Some((ca, va)), Some((cb, vb))) => {
                        if ca == cb {
                            if (va - vb).abs() > tol {
                                return false;
                            }
                            a.next();
                            b.next();
                        } else if ca < cb {
                            if va.abs() > tol {
                                return false;
                            }
                            a.next();
                        } else {
                            if vb.abs() > tol {
                                return false;
                            }
                            b.next();
                        }
                    }
                }
            }
        }
        true
    }

    /// Checks symmetry with the crate default tolerance (scaled by the
    /// Frobenius norm, mirroring [`Matrix::require_symmetric`]).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::NotSymmetric`].
    pub fn require_symmetric(&self) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if !self.is_symmetric(crate::DEFAULT_TOLERANCE.max(1e-9 * self.frobenius_norm())) {
            return Err(LinalgError::NotSymmetric);
        }
        Ok(())
    }

    /// Frobenius norm over the stored entries.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> CsrMatrix {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|v| v * factor).collect(),
        }
    }

    /// Returns `true` if every row sums to `target` within `tol` (missing
    /// entries count as zero), mirroring [`Matrix::rows_sum_to`].
    pub fn rows_sum_to(&self, target: f64, tol: f64) -> bool {
        (0..self.rows).all(|i| {
            let sum: f64 = self.row_iter(i).map(|(_, v)| v).sum();
            (sum - target).abs() <= tol
        })
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix({}x{}, nnz = {})",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    /// A deterministic pseudo-random sparse pattern for the property tests.
    fn seeded_sparse(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
        let mut triplets = Vec::new();
        for i in 0..rows {
            for j in 0..cols {
                let h = (i * 31 + j * 17 + seed as usize * 7) % 11;
                if h < 4 {
                    triplets.push((i, j, h as f64 - 1.5));
                }
            }
        }
        CsrMatrix::from_triplets(rows, cols, &triplets).unwrap()
    }

    fn seeded_vector(len: usize, seed: u64) -> Vector {
        (0..len)
            .map(|i| ((i * 13 + seed as usize * 5) % 9) as f64 - 4.0)
            .collect()
    }

    #[test]
    fn zeros_and_identity() {
        let z = CsrMatrix::zeros(3, 4);
        assert_eq!(z.nnz(), 0);
        assert!(!z.is_square());
        assert_eq!(z.matvec(&Vector::ones(4)).unwrap(), Vector::zeros(3));
        let id = CsrMatrix::identity(3);
        assert_eq!(id.nnz(), 3);
        let x = Vector::from(vec![1.0, -2.0, 3.0]);
        assert_eq!(id.matvec(&x).unwrap(), x);
        assert!(id.is_symmetric(0.0));
    }

    #[test]
    fn from_triplets_sums_duplicates_and_sorts() {
        let m =
            CsrMatrix::from_triplets(2, 3, &[(1, 2, 1.0), (0, 1, 2.0), (1, 2, 0.5), (1, 0, -1.0)])
                .unwrap();
        assert_eq!(m.nnz(), 3);
        assert!(close(m.get(1, 2), 1.5));
        assert!(close(m.get(0, 1), 2.0));
        assert!(close(m.get(1, 0), -1.0));
        assert!(close(m.get(0, 0), 0.0));
        let row: Vec<usize> = m.row_iter(1).map(|(c, _)| c).collect();
        assert_eq!(row, vec![0, 2]);
        assert_eq!(m.row_nnz(1), 2);
    }

    #[test]
    fn from_triplets_rejects_out_of_range() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn dense_round_trip_is_exact() {
        let dense = Matrix::from_rows(&[
            vec![1.0, 0.0, -2.0],
            vec![0.0, 0.0, 0.0],
            vec![3.5, 0.0, 4.0],
        ])
        .unwrap();
        let sparse = CsrMatrix::from_dense(&dense);
        assert_eq!(sparse.nnz(), 4);
        assert_eq!(sparse.to_dense(), dense);
    }

    #[test]
    fn matvec_matches_dense() {
        let sparse = seeded_sparse(5, 7, 3);
        let dense = sparse.to_dense();
        let x = seeded_vector(7, 1);
        let ys = sparse.matvec(&x).unwrap();
        let yd = dense.matvec(&x).unwrap();
        assert!(ys.distance(&yd).unwrap() < 1e-12);
        assert!(sparse.matvec(&Vector::zeros(6)).is_err());
    }

    #[test]
    fn quadratic_form_matches_dense() {
        let sparse = seeded_sparse(6, 6, 9);
        let dense = sparse.to_dense();
        let x = seeded_vector(6, 2);
        assert!(close(
            sparse.quadratic_form(&x).unwrap(),
            dense.quadratic_form(&x).unwrap()
        ));
        assert!(seeded_sparse(2, 3, 0)
            .quadratic_form(&Vector::zeros(3))
            .is_err());
        assert!(sparse.quadratic_form(&Vector::zeros(5)).is_err());
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let sparse = seeded_sparse(4, 6, 5);
        assert_eq!(sparse.transpose().to_dense(), sparse.to_dense().transpose());
    }

    #[test]
    fn symmetry_checks() {
        let sym = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)],
        )
        .unwrap();
        assert!(sym.is_symmetric(0.0));
        assert!(sym.require_symmetric().is_ok());
        // Structurally asymmetric: entry present on one side only.
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(!asym.is_symmetric(1e-12));
        assert!(asym.is_symmetric(2.0));
        assert!(matches!(
            asym.require_symmetric(),
            Err(LinalgError::NotSymmetric)
        ));
        assert!(!CsrMatrix::zeros(2, 3).is_symmetric(1.0));
        assert!(CsrMatrix::zeros(2, 3).require_symmetric().is_err());
    }

    #[test]
    fn scaled_and_row_sums() {
        let half =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.5), (0, 1, 0.5), (1, 1, 1.0)]).unwrap();
        assert!(half.rows_sum_to(1.0, 1e-12));
        let double = half.scaled(2.0);
        assert!(close(double.get(0, 1), 1.0));
        assert!(double.rows_sum_to(2.0, 1e-12));
    }

    #[test]
    fn display_mentions_shape() {
        let m = CsrMatrix::identity(4);
        let s = format!("{m}");
        assert!(s.contains("4x4"));
        assert!(s.contains("nnz = 4"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_matvec_linear(n in 1usize..8, a in -3.0f64..3.0, seed in 0u64..200) {
            let m = seeded_sparse(n, n, seed);
            let x = seeded_vector(n, seed + 1);
            let lhs = m.matvec(&x.scaled(a)).unwrap();
            let rhs = m.matvec(&x).unwrap().scaled(a);
            prop_assert!(lhs.distance(&rhs).unwrap() < 1e-9);
        }

        #[test]
        fn prop_transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..200) {
            let m = seeded_sparse(rows, cols, seed);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn prop_dense_csr_dense_round_trip(rows in 1usize..8, cols in 1usize..8, seed in 0u64..200) {
            let dense = seeded_sparse(rows, cols, seed).to_dense();
            prop_assert_eq!(CsrMatrix::from_dense(&dense).to_dense(), dense);
        }

        #[test]
        fn prop_frobenius_matches_dense(rows in 1usize..8, cols in 1usize..8, seed in 0u64..200) {
            let m = seeded_sparse(rows, cols, seed);
            prop_assert!((m.frobenius_norm() - m.to_dense().frobenius_norm()).abs() < 1e-9);
        }
    }
}
