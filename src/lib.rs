//! # sparse-cut-gossip
//!
//! A reproduction of **“Distributed averaging in the presence of a sparse
//! cut”** (Hariharan Narayanan, PODC 2008) as a Rust workspace: an
//! asynchronous edge-clock gossip simulator, the paper's convex class `C` and
//! non-convex **Algorithm A**, the related-work baselines, an empirical
//! averaging-time estimator implementing Definition 1, and an experiment
//! harness that regenerates every quantitative claim of the paper.
//!
//! This crate is a façade: it re-exports the member crates under stable
//! module names so that downstream users can depend on a single package.
//!
//! ```
//! use sparse_cut_gossip::prelude::*;
//!
//! // Build the paper's dumbbell graph and run Algorithm A on it.
//! let (graph, partition) = dumbbell(16)?;
//! let algorithm =
//!     SparseCutAlgorithm::from_partition(&graph, &partition, SparseCutConfig::default())?;
//! let initial = AveragingTimeEstimator::adversarial_initial(&partition);
//! let config = SimulationConfig::new(1)
//!     .with_stopping_rule(StoppingRule::definition1().or_max_time(10_000.0));
//! let mut simulator = AsyncSimulator::new(&graph, initial, algorithm, config)?;
//! let outcome = simulator.run()?;
//! assert!(outcome.converged());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Statistical analysis utilities (re-export of `gossip-analysis`).
pub use gossip_analysis as analysis;
/// The paper's algorithms, estimator, and bounds (re-export of `gossip-core`).
pub use gossip_core as core;
/// Deterministic parallel run executor (re-export of `gossip-exec`).
pub use gossip_exec as exec;
/// Graph substrate (re-export of `gossip-graph`).
pub use gossip_graph as graph;
/// Dense linear algebra (re-export of `gossip-linalg`).
pub use gossip_linalg as linalg;
/// Asynchronous simulator (re-export of `gossip-sim`).
pub use gossip_sim as sim;
/// Workload definitions (re-export of `gossip-workloads`).
pub use gossip_workloads as workloads;

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use gossip_core::averaging_time::{
        AveragingTimeEstimate, AveragingTimeEstimator, EstimatorConfig,
    };
    pub use gossip_core::bounds::{theorem1_lower_bound, theorem2_upper_bound, BoundsSummary};
    pub use gossip_core::convex::{RandomNeighborGossip, VanillaGossip, WeightedConvexGossip};
    pub use gossip_core::diffusion::{FirstOrderDiffusion, SecondOrderDiffusion};
    pub use gossip_core::robust::{MedianNeighborGossip, TrimmedMeanGossip};
    pub use gossip_core::sparse_cut::{SparseCutAlgorithm, SparseCutConfig, TransferCoefficient};
    pub use gossip_core::two_time_scale::TwoTimeScaleGossip;
    pub use gossip_exec::Executor;
    pub use gossip_graph::dynamic::DynamicGraphView;
    pub use gossip_graph::generators::{
        barbell, bridged_clusters, chordal_ring, complete, dumbbell, expander_barbell,
        expander_dumbbell, grid_corridor, ring_of_cliques, two_block_sbm,
    };
    pub use gossip_graph::spectral::{SpectralProfile, SPARSE_DISPATCH_THRESHOLD};
    pub use gossip_graph::{Edge, EdgeId, Graph, GraphBuilder, NodeId, Partition};
    pub use gossip_linalg::{CsrMatrix, Lanczos, LinearOperator, Matrix, Vector};
    pub use gossip_sim::adversary::{AdversaryPlan, AdversaryStats};
    pub use gossip_sim::engine::{
        AsyncSimulator, ClockModel, MemoryLayout, SimulationConfig, SimulationOutcome,
        VarianceMode, DEFAULT_MOMENT_REFRESH_TICKS,
    };
    pub use gossip_sim::fault::{FaultPlan, FaultStats};
    pub use gossip_sim::flat::{run_f32, F32Oracle, F32Outcome, FlatTopology};
    pub use gossip_sim::handler::{EdgeTickContext, EdgeTickHandler};
    pub use gossip_sim::moments::MomentTracker;
    pub use gossip_sim::stopping::StoppingRule;
    pub use gossip_sim::sync::{RoundHandler, SyncConfig, SyncSimulator};
    pub use gossip_sim::trace::{Trace, TraceConfig};
    pub use gossip_sim::values::NodeValues;
    pub use gossip_workloads::adversary::{
        adversary_suite, AdversaryCase, AdversaryProfile, AggregationKind,
    };
    pub use gossip_workloads::churn::{churn_suite, ChurnCase, FaultProfile};
    pub use gossip_workloads::{ExperimentId, InitialCondition, Scenario};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let (graph, partition) = dumbbell(4).unwrap();
        let initial = InitialCondition::AdversarialCut
            .generate(graph.node_count(), Some(&partition), 0)
            .unwrap();
        let config = SimulationConfig::new(5)
            .with_stopping_rule(StoppingRule::definition1().or_max_time(5_000.0));
        let mut sim = AsyncSimulator::new(&graph, initial, VanillaGossip::new(), config).unwrap();
        let outcome = sim.run().unwrap();
        assert!(outcome.converged());
        assert!(theorem1_lower_bound(&partition) > 0.0);
    }
}
